//! Online SLO monitoring: an in-sim telemetry pipeline.
//!
//! Everything else in `obs` is a post-hoc reducer over a finished
//! trace. This module is the opposite: a [`Monitor`] lives *inside* the
//! run and is fed a [`Scrape`] of the cluster's observable surface
//! (client success/error counters, per-node liveness, the proxy's
//! health view) on a fixed sim-time tick. Each tick it updates rolling
//! windows, evaluates a small declarative rule set — threshold rules
//! plus multi-window burn-rate rules over the availability SLO — and
//! drives each rule's alert lifecycle (pending → firing → resolved),
//! appending every transition to an append-only [`AlertLog`].
//!
//! Because the scrape tick is driven deterministically (the experiment
//! loop pauses the engine at exact simulated instants and only *reads*
//! cluster state), the alert log of a `(seed, config)` pair is
//! byte-identical across runs, and a disabled monitor is exactly
//! zero-overhead: no ticks are scheduled at all.
//!
//! All rule arithmetic is integer fixed-point (parts-per-million rates,
//! thousandths for burn factors): no floats are held or compared, so
//! the evaluation path is deterministic by construction and passes the
//! lint wall's `float-state` rule; it is also written panic-free
//! (`panic-taint` covers [`Monitor::on_scrape`]).
//!
//! The second half of the module is the *scorer*: it joins fired
//! alerts against the faultload's ground-truth injection log (the
//! driver records the actual microsecond each fault was applied) to
//! measure what an operator would experience — detection latency per
//! incident, missed incidents, false positives on fault-free runs, and
//! time-to-resolve.

use std::collections::VecDeque;

use crate::metrics::Hist;

/// One million, the fixed-point base for rates (parts per million).
const PPM: u64 = 1_000_000;

/// Subject id for cluster-scoped alerts (rules that watch aggregate
/// signals rather than one node).
pub const SUBJECT_CLUSTER: u32 = u32::MAX;

/// Rule names (the `&'static str` vocabulary carried by alert events).
pub const RULE_REPLICA_DOWN: &str = "replica_down";
/// Short-window error-ratio threshold rule.
pub const RULE_ERROR_RATE: &str = "error_rate";
/// Fast multi-window SLO burn-rate rule (pages quickly).
pub const RULE_FAST_BURN: &str = "slo_fast_burn";
/// Slow multi-window SLO burn-rate rule (catches smoulder).
pub const RULE_SLOW_BURN: &str = "slo_slow_burn";
/// Throughput-collapse rule against a self-learned baseline.
pub const RULE_WIPS_DROP: &str = "wips_drop";

/// The boolean predicate a rule evaluates each tick.
///
/// Rates are integers: error ratios in parts per million, burn factors
/// in thousandths (`14_400` = the classic 14.4× fast-burn factor),
/// fractions in percent. Windows are counted in scrape ticks, so the
/// same rule set sweeps cleanly across scrape intervals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuleExpr {
    /// A replica that has been ready at least once is now unscrapeable
    /// or not ready (crashed, or restarted and still recovering).
    /// Evaluated per node; retired replicas leave the watch set.
    ReplicaDown,
    /// The error ratio over the last `window_ticks` exceeds
    /// `threshold_ppm`, given at least `min_samples` completions.
    ErrorRate {
        /// Rolling window length, in scrape ticks.
        window_ticks: u32,
        /// Minimum completions in the window before the rule can fire.
        min_samples: u64,
        /// Error ratio threshold, parts per million.
        threshold_ppm: u64,
    },
    /// Multi-window burn rate over the SLO error budget: the error
    /// ratio must exceed `factor_x1000/1000 × budget` over *both* the
    /// short and the long window (the SRE-book construction: the long
    /// window keeps one bad tick from paging, the short window lets the
    /// alert resolve promptly once the error rate recovers).
    BurnRate {
        /// Short window, in scrape ticks.
        short_ticks: u32,
        /// Long window, in scrape ticks.
        long_ticks: u32,
        /// Burn factor in thousandths (`14_400` = 14.4×).
        factor_x1000: u64,
    },
    /// Successful throughput over the last `window_ticks` fell below
    /// `min_fraction_pct` percent of the baseline, where the baseline
    /// is the largest `baseline_ticks`-window throughput seen so far
    /// (self-learned, so ramp-up never trips it).
    WipsDrop {
        /// Rolling window length, in scrape ticks.
        window_ticks: u32,
        /// Baseline window length, in scrape ticks.
        baseline_ticks: u32,
        /// Firing threshold as a percentage of baseline throughput.
        min_fraction_pct: u64,
    },
}

/// One declarative alerting rule: a named predicate plus the lifecycle
/// debounce (how many consecutive breach ticks before firing, how many
/// clean ticks before resolving).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// Stable rule name; becomes the `rule` tag of alert events.
    pub name: &'static str,
    /// Consecutive breach ticks before the alert fires (1 = fire on
    /// first breach, no pending phase).
    pub pending_ticks: u32,
    /// Consecutive clean ticks before a firing alert resolves.
    pub clear_ticks: u32,
    /// The predicate.
    pub expr: RuleExpr,
}

/// The standard rule set: per-replica liveness, an error-ratio
/// threshold, fast and slow SLO burn rates, and throughput collapse.
pub fn standard_rules() -> Vec<Rule> {
    vec![
        Rule {
            name: RULE_REPLICA_DOWN,
            pending_ticks: 2,
            clear_ticks: 3,
            expr: RuleExpr::ReplicaDown,
        },
        Rule {
            name: RULE_ERROR_RATE,
            pending_ticks: 2,
            clear_ticks: 3,
            expr: RuleExpr::ErrorRate {
                window_ticks: 5,
                min_samples: 10,
                threshold_ppm: 100_000, // 10 % of completions failing
            },
        },
        Rule {
            name: RULE_FAST_BURN,
            pending_ticks: 1,
            clear_ticks: 3,
            expr: RuleExpr::BurnRate {
                short_ticks: 5,
                long_ticks: 30,
                factor_x1000: 14_400, // 14.4× budget burn
            },
        },
        Rule {
            name: RULE_SLOW_BURN,
            pending_ticks: 3,
            clear_ticks: 5,
            expr: RuleExpr::BurnRate {
                short_ticks: 30,
                long_ticks: 120,
                factor_x1000: 3_000, // 3× budget burn
            },
        },
        Rule {
            name: RULE_WIPS_DROP,
            pending_ticks: 2,
            clear_ticks: 3,
            expr: RuleExpr::WipsDrop {
                window_ticks: 5,
                baseline_ticks: 30,
                min_fraction_pct: 50,
            },
        },
    ]
}

/// Monitoring knob carried by experiment configs. Mirrors the tracer's
/// contract: `enabled: false` (the default) is exactly zero overhead —
/// the driver schedules no scrape ticks at all, so the engine's event
/// stream is untouched byte for byte.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorConfig {
    /// Master switch. Off by default.
    pub enabled: bool,
    /// Scrape period in simulated µs (default 1 s).
    pub scrape_interval_us: u64,
    /// SLO error budget in parts per million of interactions (default
    /// 1 000 ppm = the 99.9 % availability SLO).
    pub slo_error_budget_ppm: u64,
    /// The rule set to evaluate each tick.
    pub rules: Vec<Rule>,
}

impl Default for MonitorConfig {
    fn default() -> MonitorConfig {
        MonitorConfig {
            enabled: false,
            scrape_interval_us: 1_000_000,
            slo_error_budget_ppm: 1_000,
            rules: standard_rules(),
        }
    }
}

impl MonitorConfig {
    /// A config with monitoring on and the standard rule set.
    pub fn on() -> MonitorConfig {
        MonitorConfig {
            enabled: true,
            ..MonitorConfig::default()
        }
    }

    /// Rescales rule sensitivity: every rule's `pending_ticks` is
    /// replaced by `pending_ticks` and every threshold is multiplied by
    /// `threshold_scale_pct`/100 (50 = twice as sensitive, 200 = half).
    /// This is the knob `exp_monitor` sweeps.
    pub fn with_sensitivity(mut self, pending_ticks: u32, threshold_scale_pct: u64) -> Self {
        for rule in &mut self.rules {
            rule.pending_ticks = pending_ticks.max(1);
            match &mut rule.expr {
                RuleExpr::ReplicaDown => {}
                RuleExpr::ErrorRate { threshold_ppm, .. } => {
                    *threshold_ppm = (*threshold_ppm * threshold_scale_pct / 100).max(1);
                }
                RuleExpr::BurnRate { factor_x1000, .. } => {
                    *factor_x1000 = (*factor_x1000 * threshold_scale_pct / 100).max(1);
                }
                RuleExpr::WipsDrop {
                    min_fraction_pct, ..
                } => {
                    // Scale the allowed *drop margin*, not the fraction:
                    // halving the margin (scale 50) moves 50 % → 75 %,
                    // never to a noise-level threshold near 100 %.
                    let margin = (100 - (*min_fraction_pct).min(100)) * threshold_scale_pct / 100;
                    *min_fraction_pct = 100u64.saturating_sub(margin).clamp(1, 95);
                }
            }
        }
        self
    }
}

/// One node's health as seen by the scrape (out-of-band management
/// view: the driver reads the process table directly, so a network
/// partition does not hide a node from the monitor — only a crash or
/// an in-progress recovery does).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeHealth {
    /// The process exists (not crashed / not an unprovisioned spare).
    pub present: bool,
    /// The replica answers its readiness probe (recovered, serving).
    pub ready: bool,
    /// A membership change removed the replica; it leaves the watch
    /// set instead of alerting forever.
    pub retired: bool,
}

/// One scrape of the cluster's observable surface, taken at a tick.
/// Counters are cumulative (Prometheus-style); the monitor differences
/// them itself, so a scrape is cheap to assemble and stateless.
#[derive(Debug, Clone, Default)]
pub struct Scrape {
    /// Cumulative successful client interactions.
    pub ok_total: u64,
    /// Cumulative failed client interactions.
    pub err_total: u64,
    /// Per-server-slot health, indexed by node id.
    pub nodes: Vec<NodeHealth>,
    /// Backends the proxy currently keeps in rotation.
    pub healthy_backends: u64,
}

/// Alert lifecycle phase of one transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertPhase {
    /// The rule breached but has not debounced yet.
    Pending,
    /// The alert is live (an operator would be paged).
    Firing,
    /// A firing alert's condition stayed clean long enough.
    Resolved,
}

impl AlertPhase {
    /// Canonical lowercase tag (used in the log's canonical rendering).
    pub fn tag(&self) -> &'static str {
        match self {
            AlertPhase::Pending => "pending",
            AlertPhase::Firing => "firing",
            AlertPhase::Resolved => "resolved",
        }
    }
}

/// One alert lifecycle transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlertTransition {
    /// Scrape-tick time of the transition, µs.
    pub t_us: u64,
    /// The rule that transitioned.
    pub rule: &'static str,
    /// Node the alert is about, or [`SUBJECT_CLUSTER`].
    pub subject: u32,
    /// The phase entered.
    pub phase: AlertPhase,
    /// Phase dwell time: 0 for pending, time spent pending for firing,
    /// time spent firing for resolved.
    pub elapsed_us: u64,
}

/// The monitor's append-only output: every lifecycle transition, in
/// tick order. Deterministic runs produce byte-identical logs (see
/// [`AlertLog::to_lines`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AlertLog {
    /// The transitions, in emission order.
    pub entries: Vec<AlertTransition>,
}

impl AlertLog {
    /// Count of firing transitions (alerts that actually paged).
    pub fn firings(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.phase == AlertPhase::Firing)
            .count()
    }

    /// Canonical one-line-per-transition rendering; same-seed runs
    /// produce byte-identical output.
    pub fn to_lines(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&format!(
                "{{\"t\":{},\"rule\":\"{}\",\"subject\":{},\"phase\":\"{}\",\"elapsed_us\":{}}}\n",
                e.t_us,
                e.rule,
                e.subject,
                e.phase.tag(),
                e.elapsed_us
            ));
        }
        out
    }
}

/// Per-(rule, subject) lifecycle state machine.
#[derive(Debug, Clone, Copy, Default)]
struct AlertState {
    phase: Phase,
    /// Consecutive breach ticks (pending debounce).
    breach_streak: u32,
    /// Consecutive clean ticks while firing (resolve debounce).
    clean_streak: u32,
    /// When the current pending phase began, µs.
    pending_since: u64,
    /// When the current firing phase began, µs.
    firing_since: u64,
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
enum Phase {
    #[default]
    Idle,
    Pending,
    Firing,
}

/// Per-rule runtime: the lifecycle states (one per subject; cluster
/// rules use a single slot) plus the rule's learned baseline.
#[derive(Debug, Clone, Default)]
struct RuleRt {
    states: Vec<AlertState>,
    /// For [`RuleExpr::WipsDrop`]: the largest baseline-window ok-count
    /// observed so far (fixed window length, so sums compare directly).
    baseline_ok: u64,
}

/// The in-sim monitor. Feed it one [`Scrape`] per tick via
/// [`Monitor::on_scrape`]; collect the [`AlertLog`] at run end.
#[derive(Debug)]
pub struct Monitor {
    budget_ppm: u64,
    rules: Vec<Rule>,
    rt: Vec<RuleRt>,
    /// Rolling per-tick (ok, err) deltas, newest last.
    window: VecDeque<(u64, u64)>,
    /// Longest window any rule needs.
    window_cap: usize,
    /// Previous cumulative counters (None before the first scrape; the
    /// first scrape only seeds the difference base).
    prev_totals: Option<(u64, u64)>,
    /// Nodes that have answered ready at least once (spares that never
    /// joined are not watched).
    ever_ready: Vec<bool>,
    log: AlertLog,
}

impl Monitor {
    /// A monitor evaluating `config`'s rule set.
    pub fn new(config: &MonitorConfig) -> Monitor {
        let window_cap = config
            .rules
            .iter()
            .map(|r| match r.expr {
                RuleExpr::ReplicaDown => 0,
                RuleExpr::ErrorRate { window_ticks, .. } => window_ticks,
                RuleExpr::BurnRate {
                    short_ticks,
                    long_ticks,
                    ..
                } => short_ticks.max(long_ticks),
                RuleExpr::WipsDrop {
                    window_ticks,
                    baseline_ticks,
                    ..
                } => window_ticks.max(baseline_ticks),
            })
            .max()
            .unwrap_or(0) as usize;
        Monitor {
            budget_ppm: config.slo_error_budget_ppm.max(1),
            rules: config.rules.clone(),
            rt: config.rules.iter().map(|_| RuleRt::default()).collect(),
            window: VecDeque::with_capacity(window_cap),
            window_cap: window_cap.max(1),
            prev_totals: None,
            ever_ready: Vec::new(),
            log: AlertLog::default(),
        }
    }

    /// Processes one scrape tick: updates the rolling windows,
    /// evaluates every rule, advances lifecycles, and returns the
    /// transitions emitted this tick (a suffix of the log).
    pub fn on_scrape(&mut self, t_us: u64, scrape: &Scrape) -> &[AlertTransition] {
        let emitted_from = self.log.entries.len();

        // Difference the cumulative interaction counters. The first
        // scrape only seeds the base, so pre-window traffic (ramp-up)
        // never lands in tick 0.
        if let Some((prev_ok, prev_err)) = self.prev_totals {
            let d_ok = scrape.ok_total.saturating_sub(prev_ok);
            let d_err = scrape.err_total.saturating_sub(prev_err);
            if self.window.len() == self.window_cap {
                self.window.pop_front();
            }
            self.window.push_back((d_ok, d_err));
        }
        self.prev_totals = Some((scrape.ok_total, scrape.err_total));

        // Maintain the liveness watch set.
        if self.ever_ready.len() < scrape.nodes.len() {
            self.ever_ready.resize(scrape.nodes.len(), false);
        }
        for (latch, health) in self.ever_ready.iter_mut().zip(&scrape.nodes) {
            if health.retired {
                *latch = false; // deliberately decommissioned: stop watching
            } else if health.present && health.ready {
                *latch = true;
            }
        }

        for (rule_idx, rule) in self.rules.iter().enumerate() {
            let Some(rt) = self.rt.get_mut(rule_idx) else {
                continue;
            };
            match rule.expr {
                RuleExpr::ReplicaDown => {
                    if rt.states.len() < scrape.nodes.len() {
                        rt.states.resize(scrape.nodes.len(), AlertState::default());
                    }
                    for (node, health) in scrape.nodes.iter().enumerate() {
                        let watched = self.ever_ready.get(node).copied().unwrap_or(false);
                        let breach = watched && !(health.present && health.ready);
                        if let Some(state) = rt.states.get_mut(node) {
                            step(state, breach, t_us, rule, node as u32, &mut self.log);
                        }
                    }
                }
                RuleExpr::ErrorRate {
                    window_ticks,
                    min_samples,
                    threshold_ppm,
                } => {
                    let (ok, err) = window_sums(&self.window, window_ticks);
                    let total = ok + err;
                    let breach = total >= min_samples.max(1)
                        && err.saturating_mul(PPM) > threshold_ppm.saturating_mul(total);
                    step_single(rt, breach, t_us, rule, &mut self.log);
                }
                RuleExpr::BurnRate {
                    short_ticks,
                    long_ticks,
                    factor_x1000,
                } => {
                    // burn = error_ratio / budget; breach when burn
                    // exceeds factor over both windows. Integer form:
                    // err × 1e6 × 1000 > factor_x1000 × budget × total.
                    let over = |ticks: u32| {
                        let (ok, err) = window_sums(&self.window, ticks);
                        let total = ok + err;
                        total > 0
                            && err.saturating_mul(PPM).saturating_mul(1_000)
                                > factor_x1000
                                    .saturating_mul(self.budget_ppm)
                                    .saturating_mul(total)
                    };
                    let breach = over(short_ticks) && over(long_ticks);
                    step_single(rt, breach, t_us, rule, &mut self.log);
                }
                RuleExpr::WipsDrop {
                    window_ticks,
                    baseline_ticks,
                    min_fraction_pct,
                } => {
                    // Learn the baseline: the best baseline-window
                    // ok-count seen so far. Only full windows count, so
                    // the monitor never compares against a stub.
                    if self.window.len() >= baseline_ticks as usize {
                        let (ok, _) = window_sums(&self.window, baseline_ticks);
                        rt.baseline_ok = rt.baseline_ok.max(ok);
                    }
                    let mut breach = false;
                    if rt.baseline_ok > 0 && self.window.len() >= baseline_ticks as usize {
                        let (short_ok, _) = window_sums(&self.window, window_ticks);
                        // Compare rates: short/window < pct% × base/baseline.
                        breach = short_ok
                            .saturating_mul(baseline_ticks as u64)
                            .saturating_mul(100)
                            < min_fraction_pct
                                .saturating_mul(rt.baseline_ok)
                                .saturating_mul(window_ticks as u64);
                    }
                    step_single(rt, breach, t_us, rule, &mut self.log);
                }
            }
        }
        self.log.entries.get(emitted_from..).unwrap_or(&[])
    }

    /// The transitions emitted so far.
    pub fn log(&self) -> &AlertLog {
        &self.log
    }

    /// Consumes the monitor, yielding its alert log (end of run).
    pub fn into_log(self) -> AlertLog {
        self.log
    }
}

/// Sums the newest `ticks` window entries: `(ok, err)`.
fn window_sums(window: &VecDeque<(u64, u64)>, ticks: u32) -> (u64, u64) {
    let skip = window.len().saturating_sub(ticks as usize);
    let mut ok = 0u64;
    let mut err = 0u64;
    for (o, e) in window.iter().skip(skip) {
        ok = ok.saturating_add(*o);
        err = err.saturating_add(*e);
    }
    (ok, err)
}

/// Advances a cluster-scoped rule's single lifecycle slot.
fn step_single(rt: &mut RuleRt, breach: bool, t_us: u64, rule: &Rule, log: &mut AlertLog) {
    if rt.states.is_empty() {
        rt.states.push(AlertState::default());
    }
    if let Some(state) = rt.states.first_mut() {
        step(state, breach, t_us, rule, SUBJECT_CLUSTER, log);
    }
}

/// The lifecycle state machine: Idle → Pending → Firing → Idle.
fn step(
    state: &mut AlertState,
    breach: bool,
    t_us: u64,
    rule: &Rule,
    subject: u32,
    log: &mut AlertLog,
) {
    match state.phase {
        Phase::Idle => {
            if breach {
                state.breach_streak = 1;
                state.pending_since = t_us;
                if state.breach_streak >= rule.pending_ticks {
                    state.phase = Phase::Firing;
                    state.firing_since = t_us;
                    state.clean_streak = 0;
                    log.entries.push(AlertTransition {
                        t_us,
                        rule: rule.name,
                        subject,
                        phase: AlertPhase::Firing,
                        elapsed_us: 0,
                    });
                } else {
                    state.phase = Phase::Pending;
                    log.entries.push(AlertTransition {
                        t_us,
                        rule: rule.name,
                        subject,
                        phase: AlertPhase::Pending,
                        elapsed_us: 0,
                    });
                }
            }
        }
        Phase::Pending => {
            if breach {
                state.breach_streak = state.breach_streak.saturating_add(1);
                if state.breach_streak >= rule.pending_ticks {
                    state.phase = Phase::Firing;
                    state.firing_since = t_us;
                    state.clean_streak = 0;
                    log.entries.push(AlertTransition {
                        t_us,
                        rule: rule.name,
                        subject,
                        phase: AlertPhase::Firing,
                        elapsed_us: t_us.saturating_sub(state.pending_since),
                    });
                }
            } else {
                // The breach cleared before debounce: drop back to idle
                // silently (the pending event already marks the blip).
                state.phase = Phase::Idle;
                state.breach_streak = 0;
            }
        }
        Phase::Firing => {
            if breach {
                state.clean_streak = 0;
            } else {
                state.clean_streak = state.clean_streak.saturating_add(1);
                if state.clean_streak >= rule.clear_ticks.max(1) {
                    state.phase = Phase::Idle;
                    state.breach_streak = 0;
                    log.entries.push(AlertTransition {
                        t_us,
                        rule: rule.name,
                        subject,
                        phase: AlertPhase::Resolved,
                        elapsed_us: t_us.saturating_sub(state.firing_since),
                    });
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Alert-quality scoring against ground truth.

/// One ground-truth fault injection, as recorded by the driver at the
/// actual microsecond it was applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroundTruth {
    /// Injection time, µs.
    pub at_us: u64,
    /// Victim node, or [`SUBJECT_CLUSTER`] for cluster-wide faults.
    pub node: u32,
    /// Injection kind tag (`"crash"`, `"partition"`, …).
    pub kind: &'static str,
}

/// Knobs for the alert↔injection join.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScoreConfig {
    /// An alert firing within this long after an injection detects it.
    pub detect_horizon_us: u64,
    /// A firing within this long after *any* injection is attributed to
    /// its aftermath rather than counted as a false positive.
    pub clear_grace_us: u64,
}

impl Default for ScoreConfig {
    fn default() -> ScoreConfig {
        ScoreConfig {
            detect_horizon_us: 30_000_000,
            clear_grace_us: 120_000_000,
        }
    }
}

/// One incident's alert-quality verdict.
#[derive(Debug, Clone)]
pub struct IncidentScore {
    /// Ground-truth injection time, µs.
    pub at_us: u64,
    /// Victim node (or [`SUBJECT_CLUSTER`]).
    pub node: u32,
    /// Injection kind.
    pub kind: &'static str,
    /// The rule whose firing detected the incident, if any did.
    pub rule: Option<&'static str>,
    /// Injection → first matching alert firing, µs.
    pub detection_latency_us: Option<u64>,
    /// Injection → that alert's resolve transition, µs.
    pub resolve_latency_us: Option<u64>,
}

/// Alert quality over one run: per-incident verdicts plus run-wide
/// false-positive accounting.
#[derive(Debug, Clone, Default)]
pub struct AlertScore {
    /// Per-injection verdicts, in injection order.
    pub incidents: Vec<IncidentScore>,
    /// Total firing transitions in the log.
    pub firings: u64,
    /// Firings with no injection anywhere in the preceding grace
    /// window (on a fault-free run: every firing).
    pub false_positives: u64,
    /// Distribution of the measured detection latencies.
    pub detection_latency: Hist,
}

impl AlertScore {
    /// Incidents an alert fired for.
    pub fn detected(&self) -> usize {
        self.incidents
            .iter()
            .filter(|i| i.detection_latency_us.is_some())
            .count()
    }

    /// Incidents no alert fired for inside the horizon.
    pub fn missed(&self) -> usize {
        self.incidents.len() - self.detected()
    }
}

/// Joins fired alerts against the ground-truth injection log.
///
/// Each firing detects at most one injection; injections claim firings
/// in time order, preferring a firing whose subject matches the victim
/// node before settling for any unclaimed firing in the horizon.
pub fn score_alerts(log: &AlertLog, truth: &[GroundTruth], cfg: &ScoreConfig) -> AlertScore {
    let firings: Vec<(usize, &AlertTransition)> = log
        .entries
        .iter()
        .enumerate()
        .filter(|(_, e)| e.phase == AlertPhase::Firing)
        .collect();
    let mut claimed = vec![false; firings.len()];
    let mut score = AlertScore {
        firings: firings.len() as u64,
        ..AlertScore::default()
    };

    let mut injections: Vec<GroundTruth> = truth.to_vec();
    injections.sort_by_key(|i| i.at_us);
    for inj in &injections {
        let in_horizon = |e: &AlertTransition| {
            e.t_us >= inj.at_us && e.t_us - inj.at_us <= cfg.detect_horizon_us
        };
        // Pass 1: a firing about the victim itself. Pass 2: any firing.
        let mut chosen: Option<usize> = None;
        for (slot, (_, e)) in firings.iter().enumerate() {
            if !claimed[slot] && in_horizon(e) && e.subject == inj.node {
                chosen = Some(slot);
                break;
            }
        }
        if chosen.is_none() {
            for (slot, (_, e)) in firings.iter().enumerate() {
                if !claimed[slot] && in_horizon(e) {
                    chosen = Some(slot);
                    break;
                }
            }
        }
        let mut incident = IncidentScore {
            at_us: inj.at_us,
            node: inj.node,
            kind: inj.kind,
            rule: None,
            detection_latency_us: None,
            resolve_latency_us: None,
        };
        if let Some(slot) = chosen {
            claimed[slot] = true;
            let (log_idx, fire) = firings[slot];
            incident.rule = Some(fire.rule);
            let latency = fire.t_us - inj.at_us;
            incident.detection_latency_us = Some(latency);
            score.detection_latency.observe(latency.max(1));
            incident.resolve_latency_us = log.entries[log_idx..]
                .iter()
                .find(|e| {
                    e.phase == AlertPhase::Resolved
                        && e.rule == fire.rule
                        && e.subject == fire.subject
                })
                .map(|e| e.t_us - inj.at_us);
        }
        score.incidents.push(incident);
    }

    // False positives: firings with no injection in the grace window
    // before them (claimed firings always have one by construction).
    for (_, fire) in &firings {
        let excused = injections
            .iter()
            .any(|inj| fire.t_us >= inj.at_us && fire.t_us - inj.at_us <= cfg.clear_grace_us);
        if !excused {
            score.false_positives += 1;
        }
    }
    score
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes_up(n: usize) -> Vec<NodeHealth> {
        vec![
            NodeHealth {
                present: true,
                ready: true,
                retired: false
            };
            n
        ]
    }

    fn scrape(ok: u64, err: u64, nodes: Vec<NodeHealth>) -> Scrape {
        Scrape {
            ok_total: ok,
            err_total: err,
            nodes,
            healthy_backends: 0,
        }
    }

    /// Drives a monitor through `ticks` scrapes of steady traffic.
    fn steady(mon: &mut Monitor, from_tick: u64, ticks: u64, per_tick_ok: u64, nodes: usize) {
        for i in 0..ticks {
            let t = from_tick + i;
            mon.on_scrape(
                t * 1_000_000,
                &scrape((t + 1) * per_tick_ok, 0, nodes_up(nodes)),
            );
        }
    }

    #[test]
    fn replica_down_fires_after_debounce_and_resolves() {
        let cfg = MonitorConfig::on();
        let mut mon = Monitor::new(&cfg);
        // Three healthy ticks latch the nodes into the watch set.
        steady(&mut mon, 0, 3, 10, 3);
        // Node 1 crashes: pending on the first bad tick, firing on the
        // second (pending_ticks = 2).
        let mut down = nodes_up(3);
        down[1] = NodeHealth::default();
        let out = mon.on_scrape(3_000_000, &scrape(40, 0, down.clone()));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].phase, AlertPhase::Pending);
        assert_eq!(out[0].subject, 1);
        let out = mon.on_scrape(4_000_000, &scrape(50, 0, down));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].phase, AlertPhase::Firing);
        assert_eq!(out[0].rule, RULE_REPLICA_DOWN);
        assert_eq!(out[0].elapsed_us, 1_000_000);
        // Recovery: three clean ticks resolve it.
        steady(&mut mon, 5, 2, 10, 3);
        let out = mon.on_scrape(7_000_000, &scrape(80, 0, nodes_up(3)));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].phase, AlertPhase::Resolved);
        assert_eq!(out[0].elapsed_us, 3_000_000);
    }

    #[test]
    fn spares_and_retired_nodes_never_alert() {
        let cfg = MonitorConfig::on();
        let mut mon = Monitor::new(&cfg);
        // Node 2 is an unprovisioned spare (never ready): no alert.
        let mut nodes = nodes_up(3);
        nodes[2] = NodeHealth::default();
        for t in 0..6u64 {
            let out = mon.on_scrape(t * 1_000_000, &scrape((t + 1) * 10, 0, nodes.clone()));
            assert!(out.is_empty(), "tick {t}: {out:?}");
        }
        // Node 0 retires: watched until now, but retirement clears the
        // latch instead of alerting.
        nodes[0] = NodeHealth {
            present: true,
            ready: false,
            retired: true,
        };
        for t in 6..12u64 {
            let out = mon.on_scrape(t * 1_000_000, &scrape((t + 1) * 10, 0, nodes.clone()));
            assert!(out.is_empty(), "tick {t}: {out:?}");
        }
    }

    #[test]
    fn pending_blip_clears_silently() {
        let cfg = MonitorConfig::on();
        let mut mon = Monitor::new(&cfg);
        steady(&mut mon, 0, 3, 10, 2);
        let mut down = nodes_up(2);
        down[0] = NodeHealth::default();
        let out = mon.on_scrape(3_000_000, &scrape(40, 0, down));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].phase, AlertPhase::Pending);
        // Healthy again before the debounce: no firing, no resolve.
        let out = mon.on_scrape(4_000_000, &scrape(50, 0, nodes_up(2)));
        assert!(out.is_empty());
        assert_eq!(mon.log().firings(), 0);
    }

    #[test]
    fn burn_rate_needs_both_windows() {
        let mut cfg = MonitorConfig::on();
        cfg.rules = vec![Rule {
            name: RULE_FAST_BURN,
            pending_ticks: 1,
            clear_ticks: 2,
            expr: RuleExpr::BurnRate {
                short_ticks: 2,
                long_ticks: 6,
                factor_x1000: 14_400,
            },
        }];
        let mut mon = Monitor::new(&cfg);
        // Budget 1000 ppm × 14.4 = 14 400 ppm ≈ 1.44 % errors to burn.
        // Six clean ticks: the long window is healthy.
        steady(&mut mon, 0, 7, 100, 1);
        // One very bad tick: short window breaches, long (still mostly
        // clean) does not — 50 errors over ~600 completions ≈ 8 %,
        // which *does* breach 1.44 %... use a long-window-diluting
        // profile instead: tiny error count.
        let out = mon.on_scrape(7_000_000, &scrape(800, 1, nodes_up(1)));
        // 1 error / ~201 completions short-window ≈ 5000 ppm < 14400.
        assert!(out.is_empty(), "{out:?}");
        // Sustained heavy errors: both windows light up.
        let mut fired = false;
        for t in 8..14u64 {
            let out = mon.on_scrape(
                t * 1_000_000,
                &scrape(800 + (t - 7) * 10, 1 + (t - 7) * 90, nodes_up(1)),
            );
            if out.iter().any(|e| e.phase == AlertPhase::Firing) {
                fired = true;
            }
        }
        assert!(fired, "sustained burn must fire: {:?}", mon.log());
    }

    #[test]
    fn wips_drop_learns_baseline_and_fires_on_collapse() {
        let mut cfg = MonitorConfig::on();
        cfg.rules = vec![Rule {
            name: RULE_WIPS_DROP,
            pending_ticks: 1,
            clear_ticks: 2,
            expr: RuleExpr::WipsDrop {
                window_ticks: 2,
                baseline_ticks: 4,
                min_fraction_pct: 50,
            },
        }];
        let mut mon = Monitor::new(&cfg);
        // Ramp from 0: no baseline yet, never fires.
        let ramp = [0u64, 2, 5, 8, 10, 10, 10, 10];
        let mut total = 0u64;
        for (t, add) in ramp.iter().enumerate() {
            total += add;
            let out = mon.on_scrape(t as u64 * 1_000_000, &scrape(total, 0, nodes_up(1)));
            assert!(out.is_empty(), "ramp tick {t}: {out:?}");
        }
        // Collapse to zero: fires once the short window is empty.
        let mut fired = false;
        for t in 8..12u64 {
            let out = mon.on_scrape(t * 1_000_000, &scrape(total, 0, nodes_up(1)));
            if out.iter().any(|e| e.phase == AlertPhase::Firing) {
                fired = true;
            }
        }
        assert!(fired, "collapse must fire: {:?}", mon.log());
    }

    #[test]
    fn fault_free_traffic_stays_silent() {
        let cfg = MonitorConfig::on();
        let mut mon = Monitor::new(&cfg);
        // 200 ticks of steady traffic with sporadic sub-budget errors.
        let mut err = 0u64;
        for t in 0..200u64 {
            if t % 97 == 0 {
                err += 1; // well under the 99.9 % budget at 50 ok/tick
            }
            let out = mon.on_scrape(t * 1_000_000, &scrape((t + 1) * 50, err, nodes_up(5)));
            assert!(out.is_empty(), "tick {t}: {out:?}");
        }
        assert!(mon.log().entries.is_empty());
    }

    #[test]
    fn alert_log_lines_are_canonical() {
        let log = AlertLog {
            entries: vec![
                AlertTransition {
                    t_us: 5_000_000,
                    rule: RULE_REPLICA_DOWN,
                    subject: 2,
                    phase: AlertPhase::Firing,
                    elapsed_us: 1_000_000,
                },
                AlertTransition {
                    t_us: 9_000_000,
                    rule: RULE_REPLICA_DOWN,
                    subject: 2,
                    phase: AlertPhase::Resolved,
                    elapsed_us: 4_000_000,
                },
            ],
        };
        assert_eq!(
            log.to_lines(),
            "{\"t\":5000000,\"rule\":\"replica_down\",\"subject\":2,\"phase\":\"firing\",\"elapsed_us\":1000000}\n\
             {\"t\":9000000,\"rule\":\"replica_down\",\"subject\":2,\"phase\":\"resolved\",\"elapsed_us\":4000000}\n"
        );
        assert_eq!(log.firings(), 1);
    }

    #[test]
    fn scorer_joins_detection_and_resolve() {
        let log = AlertLog {
            entries: vec![
                AlertTransition {
                    t_us: 47_000_000,
                    rule: RULE_REPLICA_DOWN,
                    subject: 3,
                    phase: AlertPhase::Firing,
                    elapsed_us: 1_000_000,
                },
                AlertTransition {
                    t_us: 49_000_000,
                    rule: RULE_WIPS_DROP,
                    subject: SUBJECT_CLUSTER,
                    phase: AlertPhase::Firing,
                    elapsed_us: 0,
                },
                AlertTransition {
                    t_us: 70_000_000,
                    rule: RULE_REPLICA_DOWN,
                    subject: 3,
                    phase: AlertPhase::Resolved,
                    elapsed_us: 23_000_000,
                },
            ],
        };
        let truth = [GroundTruth {
            at_us: 45_000_000,
            node: 3,
            kind: "crash",
        }];
        let score = score_alerts(&log, &truth, &ScoreConfig::default());
        assert_eq!(score.detected(), 1);
        assert_eq!(score.missed(), 0);
        let inc = &score.incidents[0];
        // Subject preference: the replica_down firing about node 3
        // wins over the earlier-indexed cluster-wide wips_drop.
        assert_eq!(inc.rule, Some(RULE_REPLICA_DOWN));
        assert_eq!(inc.detection_latency_us, Some(2_000_000));
        assert_eq!(inc.resolve_latency_us, Some(25_000_000));
        // The unclaimed wips_drop firing sits in the incident's grace
        // window: aftermath, not a false positive.
        assert_eq!(score.false_positives, 0);
        assert_eq!(score.firings, 2);
    }

    #[test]
    fn scorer_counts_false_positives_and_misses() {
        let log = AlertLog {
            entries: vec![AlertTransition {
                t_us: 10_000_000,
                rule: RULE_ERROR_RATE,
                subject: SUBJECT_CLUSTER,
                phase: AlertPhase::Firing,
                elapsed_us: 0,
            }],
        };
        // Fault-free run: the lone firing is a false positive.
        let score = score_alerts(&log, &[], &ScoreConfig::default());
        assert_eq!(score.false_positives, 1);
        assert!(score.incidents.is_empty());
        // An injection long after the firing: missed, and the firing
        // (before the injection) stays a false positive.
        let truth = [GroundTruth {
            at_us: 200_000_000,
            node: 0,
            kind: "crash",
        }];
        let score = score_alerts(&log, &truth, &ScoreConfig::default());
        assert_eq!(score.missed(), 1);
        assert_eq!(score.false_positives, 1);
    }

    #[test]
    fn sensitivity_rescaling_moves_thresholds() {
        let eager = MonitorConfig::on().with_sensitivity(1, 50);
        for rule in &eager.rules {
            assert_eq!(rule.pending_ticks, 1);
        }
        let patient = MonitorConfig::on().with_sensitivity(3, 200);
        let find = |cfg: &MonitorConfig, name: &str| {
            cfg.rules
                .iter()
                .find(|r| r.name == name)
                .cloned()
                .expect("rule")
        };
        match (
            find(&eager, RULE_FAST_BURN).expr,
            find(&patient, RULE_FAST_BURN).expr,
        ) {
            (
                RuleExpr::BurnRate {
                    factor_x1000: lo, ..
                },
                RuleExpr::BurnRate {
                    factor_x1000: hi, ..
                },
            ) => {
                assert_eq!(lo, 7_200);
                assert_eq!(hi, 28_800);
            }
            other => panic!("{other:?}"),
        }
        // wips_drop scales the opposite way (more sensitive = higher
        // fraction) via the allowed drop margin: 50 % margin halves to
        // 25 % when eager, doubles to 100 % (clamped to an effective
        // floor) when patient.
        match (
            find(&eager, RULE_WIPS_DROP).expr,
            find(&patient, RULE_WIPS_DROP).expr,
        ) {
            (
                RuleExpr::WipsDrop {
                    min_fraction_pct: lo,
                    ..
                },
                RuleExpr::WipsDrop {
                    min_fraction_pct: hi,
                    ..
                },
            ) => {
                assert_eq!(lo, 75);
                assert_eq!(hi, 1); // clamped floor: effectively off
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn disabled_config_is_the_default() {
        let cfg = MonitorConfig::default();
        assert!(!cfg.enabled);
        assert_eq!(cfg.scrape_interval_us, 1_000_000);
        assert!(MonitorConfig::on().enabled);
    }
}
