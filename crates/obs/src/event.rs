//! The typed trace event taxonomy.
//!
//! Every interesting state transition of the stack — consensus protocol
//! steps, middleware durability actions, recovery phases, and injected
//! faults — is expressed as one [`TraceEvent`] variant. Events carry
//! only plain integers, booleans, and `'static` tag strings so that a
//! record is cheap to construct, trivially hashable, and renders to a
//! canonical JSONL line (see [`crate::jsonl`]) without any allocation
//! beyond the output string.
//!
//! Field conventions: slots, rounds, epochs, and sequence numbers are
//! `u64`; node/replica ids are `u32`; times and durations are
//! microseconds of simulated time.

/// Mode tag for [`TraceEvent::ModeSwitch`] (`"fast"`, `"classic"`,
/// `"blocked"`). Kept as strings so `obs` stays independent of the
/// consensus crate.
pub const MODE_FAST: &str = "fast";
/// Classic mode tag.
pub const MODE_CLASSIC: &str = "classic";
/// Blocked mode tag.
pub const MODE_BLOCKED: &str = "blocked";

/// One traced state transition.
///
/// Variants group into four families: the consensus protocol
/// (proposal/promise/accept/decide, elections, mode switches), the
/// replication middleware (batching, log appends, checkpoints, recovery
/// phases, delivery), the simulated environment (crash/restart, message
/// loss, disk faults), and the experiment harness (partitions, injected
/// fault profiles, audit violations).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    // --- consensus protocol ---
    /// A proposer issued a new client proposal (its per-epoch sequence).
    ProposalIssued {
        /// Proposer-local sequence number within the current epoch.
        seq: u64,
    },
    /// The local acceptor promised ballot `(round, by)`.
    Promised {
        /// Ballot round number.
        round: u64,
        /// Replica owning the ballot.
        by: u32,
    },
    /// The local acceptor accepted a decree.
    Accepted {
        /// Consensus slot.
        slot: u64,
        /// Ballot round of the acceptance.
        round: u64,
        /// Whether the ballot was a fast one.
        fast: bool,
    },
    /// The local learner marked a slot decided.
    Decided {
        /// The decided slot.
        slot: u64,
        /// Whether the decree was a gap-filling no-op.
        noop: bool,
    },
    /// The local coordinator started phase 1 for a new ballot.
    PrepareStarted {
        /// Ballot round being prepared.
        round: u64,
        /// Whether it is a fast ballot.
        fast: bool,
    },
    /// The local coordinator gathered its promise quorum and took over.
    LeaderElected {
        /// Round of the winning ballot.
        round: u64,
        /// Whether the new round is fast.
        fast: bool,
    },
    /// The failure detector's availability mode changed.
    ModeSwitch {
        /// Previous mode (`"fast"` / `"classic"` / `"blocked"`).
        from: &'static str,
        /// New mode.
        to: &'static str,
    },
    /// The local leader proposed a configuration change.
    ReconfigProposed {
        /// The configuration epoch the change would create.
        epoch: u64,
        /// Replicas being added.
        adds: u32,
        /// Replicas being removed.
        removes: u32,
    },
    /// The replica switched to a new configuration epoch at its fenced
    /// slot (or adopted one wholesale from a snapshot, `slot` 0).
    EpochChanged {
        /// The configuration epoch now in force.
        epoch: u64,
        /// Ensemble size of the new configuration.
        n: u32,
        /// Fence slot of the reconfiguration decree (0 for adoption via
        /// state transfer).
        slot: u64,
    },
    /// The middleware dropped a protocol message stamped with an older
    /// configuration epoch than the local one.
    StaleEpochRejected {
        /// Sending replica.
        from: u32,
        /// Epoch the message was stamped with.
        msg_epoch: u64,
        /// The local (newer) epoch.
        local_epoch: u64,
    },

    // --- replication middleware ---
    /// A locally submitted update received its per-epoch sequence number
    /// and entered the group-commit pipeline. The span profiler uses
    /// this as the root of each update's critical path.
    UpdateSubmitted {
        /// Submitter-local sequence number within the current epoch.
        seq: u64,
    },
    /// A group-commit batch was flushed into consensus. The batch
    /// carries the consecutive local sequence numbers
    /// `[first_seq, first_seq + updates)`, which is how the span
    /// profiler joins each update to its flush edge.
    BatchFlushed {
        /// Updates coalesced into the batch.
        updates: u64,
        /// What closed the batch: `"size"`, `"window"`, or `"single"`.
        trigger: &'static str,
        /// Sequence number of the batch's first update.
        first_seq: u64,
    },
    /// A consensus record was appended to the stable log.
    LogAppend {
        /// Serialized entry size in bytes.
        bytes: u64,
    },
    /// A previously issued log append reached the platter (fsync ok).
    AppendDurable,
    /// A checkpoint write was issued.
    CheckpointWrite {
        /// Checkpoint generation number.
        generation: u64,
        /// Application watermark covered by the checkpoint.
        slot: u64,
        /// Modeled checkpoint size in bytes.
        bytes: u64,
    },
    /// A checkpoint write became durable.
    CheckpointDurable {
        /// Checkpoint generation number.
        generation: u64,
    },
    /// Recovery started loading the newest durable checkpoint.
    CheckpointLoadStart {
        /// Modeled checkpoint size in bytes.
        bytes: u64,
    },
    /// The checkpoint finished loading.
    CheckpointLoaded {
        /// Watermark slot restored from the checkpoint.
        slot: u64,
    },
    /// Recovery started replaying the stable consensus log.
    LogReplayStart {
        /// Log size in bytes to stream back.
        bytes: u64,
    },
    /// The stable log finished replaying.
    LogReplayed {
        /// Records recovered from the log.
        records: u64,
    },
    /// Recovery finished: checkpoint loaded, log replayed, and the
    /// backlog re-learned from peers up to the cluster watermark.
    RecoveryComplete {
        /// First slot this replica will apply next.
        slot: u64,
    },
    /// An update was applied to the local state machine.
    UpdateDelivered {
        /// Consensus slot of the containing batch.
        slot: u64,
        /// Index of the update inside its batch.
        index: u64,
        /// Replica that submitted the update.
        submitter: u32,
        /// Submitter-local sequence number of the update.
        seq: u64,
        /// Submit-to-apply latency in µs (0 when the submitter was a
        /// different replica, whose clock we do not see).
        latency_us: u64,
    },
    /// The web tier sent the blocked client its reply after applying the
    /// client's update locally (the end of the paper's blocking
    /// `execute()` path).
    ReplySent {
        /// Submitter-local sequence number of the answered update.
        seq: u64,
    },

    // --- periodic load & resource samples ---
    /// One second of client-side interaction completions (emitted by a
    /// client node when its clock crosses into a new second; seconds
    /// with no completions emit nothing).
    ClientSample {
        /// The sampled second (index from run start).
        sec: u64,
        /// Successful interactions completed in that second.
        ok: u64,
        /// Failed interactions (connection errors, timeouts) in it.
        err: u64,
    },
    /// Cumulative network totals, sampled by the proxy each probe round
    /// (the proxy never crashes, so the series is monotone and the
    /// timeline can difference it into per-window traffic).
    NetSample {
        /// Messages submitted to the network so far.
        messages: u64,
        /// Payload bytes carried so far.
        bytes: u64,
    },
    /// A server's work-queue depth, sampled on its middleware tick.
    QueueSample {
        /// Queued work items (pages being rendered + updates applying).
        depth: u64,
    },

    // --- simulated environment ---
    /// The node crashed (volatile state lost).
    Crash,
    /// The node restarted with a fresh incarnation.
    Restart {
        /// New incarnation number.
        incarnation: u64,
    },
    /// A crash tore the in-flight log append: a strict prefix survived.
    TornWrite {
        /// Bytes of the entry that reached the platter.
        bytes_kept: u64,
    },
    /// An injected media error failed a durable write (fsync failure).
    DiskWriteFailed,
    /// A message left its sender (traced against the sender at the
    /// moment the engine accepted the transmission). Every send attempt
    /// gets a fresh engine-global transmission id `xid`; the matching
    /// [`TraceEvent::MsgRecv`] (or `MsgDropped` / `MsgDuplicated`)
    /// carries the same id, which is how the causal reconstructor pairs
    /// the two ends of a wire crossing.
    MsgSent {
        /// Engine-global transmission id.
        xid: u64,
        /// Intended receiver.
        to: u32,
        /// Wire size in bytes.
        bytes: u64,
    },
    /// A message arrived at its destination (traced against the
    /// receiver at delivery time, just before the handler runs).
    MsgRecv {
        /// Transmission id of the matching [`TraceEvent::MsgSent`].
        xid: u64,
        /// Sending node.
        from: u32,
        /// Wire size in bytes.
        bytes: u64,
    },
    /// The causal tag a protocol message carried on the wire (traced
    /// against the sender right after its `MsgSent`). `slot` / `round`
    /// use `u64::MAX` for "not applicable to this message kind".
    MsgTag {
        /// Transmission id of the tagged send.
        xid: u64,
        /// Protocol message kind (`"accept"`, `"accepted"`, …).
        kind: &'static str,
        /// Replica that stamped the tag (the protocol-level sender).
        origin: u32,
        /// Sender-local causal sequence number (monotone per replica).
        cseq: u64,
        /// Consensus slot provenance, `u64::MAX` when none.
        slot: u64,
        /// Ballot-round provenance, `u64::MAX` when none.
        round: u64,
    },
    /// The network model dropped an outgoing message.
    MsgDropped {
        /// Transmission id of the lost send.
        xid: u64,
        /// Intended receiver.
        to: u32,
        /// Wire size of the lost message.
        bytes: u64,
        /// `"partition"`, `"loss"`, or `"dest_down"`.
        reason: &'static str,
    },
    /// The network model duplicated an outgoing message (both copies
    /// share the original send's `xid`).
    MsgDuplicated {
        /// Transmission id of the duplicated send.
        xid: u64,
        /// Receiver of both copies.
        to: u32,
    },
    /// The local failure detector started suspecting a peer (silence
    /// exceeded the timeout).
    PeerSuspected {
        /// The suspected replica.
        peer: u32,
        /// How long the peer had been silent when suspicion began, µs.
        silent_us: u64,
    },
    /// The local failure detector cleared a suspicion (the peer was
    /// heard from again, or a membership change absolved it).
    PeerCleared {
        /// The no-longer-suspected replica.
        peer: u32,
        /// How long the suspicion lasted, µs.
        suspected_us: u64,
    },

    // --- experiment harness ---
    /// The harness cut this node off from `peers` other nodes.
    PartitionCut {
        /// Number of peers now unreachable.
        peers: u64,
    },
    /// The harness healed all partitions involving this node.
    PartitionHealed,
    /// The harness installed a lossy link-fault profile on this node's
    /// links (loss/duplicate probabilities in percent).
    NetFaultSet {
        /// Drop probability, percent.
        loss_pct: u64,
        /// Duplication probability, percent.
        dup_pct: u64,
    },
    /// The harness cleared this node's link faults.
    NetFaultCleared,
    /// The harness armed a disk-fault profile on this node.
    DiskFaultSet {
        /// Write-failure probability, percent.
        fail_pct: u64,
        /// Whether crashes tear the in-flight append.
        torn: bool,
    },
    /// The harness disarmed this node's disk faults.
    DiskFaultCleared,
    /// The invariant auditor recorded one or more new violations.
    AuditViolation {
        /// Cumulative violation count after this check.
        count: u64,
    },
    /// The online monitor saw a rule breach (not yet debounced).
    AlertPending {
        /// Rule name from the monitor's declarative rule set.
        rule: &'static str,
        /// Node the alert is about, or `u32::MAX` for cluster scope.
        subject: u32,
    },
    /// A monitor alert debounced into the firing state (a page).
    AlertFiring {
        /// Rule name.
        rule: &'static str,
        /// Node the alert is about, or `u32::MAX` for cluster scope.
        subject: u32,
        /// Time spent pending before firing, µs.
        pending_us: u64,
    },
    /// A firing monitor alert stayed clean long enough to resolve.
    AlertResolved {
        /// Rule name.
        rule: &'static str,
        /// Node the alert is about, or `u32::MAX` for cluster scope.
        subject: u32,
        /// Time spent firing before resolving, µs.
        firing_us: u64,
    },
}

impl TraceEvent {
    /// Canonical snake_case tag identifying the variant; used as the
    /// JSONL `e` field and as the per-node counter name.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::ProposalIssued { .. } => "proposal_issued",
            TraceEvent::Promised { .. } => "promised",
            TraceEvent::Accepted { .. } => "accepted",
            TraceEvent::Decided { .. } => "decided",
            TraceEvent::PrepareStarted { .. } => "prepare_started",
            TraceEvent::LeaderElected { .. } => "leader_elected",
            TraceEvent::ModeSwitch { .. } => "mode_switch",
            TraceEvent::ReconfigProposed { .. } => "reconfig_proposed",
            TraceEvent::EpochChanged { .. } => "epoch_change",
            TraceEvent::StaleEpochRejected { .. } => "stale_epoch_rejected",
            TraceEvent::UpdateSubmitted { .. } => "update_submitted",
            TraceEvent::BatchFlushed { .. } => "batch_flushed",
            TraceEvent::LogAppend { .. } => "log_append",
            TraceEvent::AppendDurable => "append_durable",
            TraceEvent::CheckpointWrite { .. } => "checkpoint_write",
            TraceEvent::CheckpointDurable { .. } => "checkpoint_durable",
            TraceEvent::CheckpointLoadStart { .. } => "checkpoint_load_start",
            TraceEvent::CheckpointLoaded { .. } => "checkpoint_loaded",
            TraceEvent::LogReplayStart { .. } => "log_replay_start",
            TraceEvent::LogReplayed { .. } => "log_replayed",
            TraceEvent::RecoveryComplete { .. } => "recovery_complete",
            TraceEvent::UpdateDelivered { .. } => "update_delivered",
            TraceEvent::ReplySent { .. } => "reply_sent",
            TraceEvent::ClientSample { .. } => "client_sample",
            TraceEvent::NetSample { .. } => "net_sample",
            TraceEvent::QueueSample { .. } => "queue_sample",
            TraceEvent::Crash => "crash",
            TraceEvent::Restart { .. } => "restart",
            TraceEvent::TornWrite { .. } => "torn_write",
            TraceEvent::DiskWriteFailed => "disk_write_failed",
            TraceEvent::MsgSent { .. } => "msg_sent",
            TraceEvent::MsgRecv { .. } => "msg_recv",
            TraceEvent::MsgTag { .. } => "msg_tag",
            TraceEvent::MsgDropped { .. } => "msg_dropped",
            TraceEvent::MsgDuplicated { .. } => "msg_duplicated",
            TraceEvent::PeerSuspected { .. } => "peer_suspected",
            TraceEvent::PeerCleared { .. } => "peer_cleared",
            TraceEvent::PartitionCut { .. } => "partition_cut",
            TraceEvent::PartitionHealed => "partition_healed",
            TraceEvent::NetFaultSet { .. } => "net_fault_set",
            TraceEvent::NetFaultCleared => "net_fault_cleared",
            TraceEvent::DiskFaultSet { .. } => "disk_fault_set",
            TraceEvent::DiskFaultCleared => "disk_fault_cleared",
            TraceEvent::AuditViolation { .. } => "audit_violation",
            TraceEvent::AlertPending { .. } => "alert_pending",
            TraceEvent::AlertFiring { .. } => "alert_firing",
            TraceEvent::AlertResolved { .. } => "alert_resolved",
        }
    }
}

/// One trace record: an event stamped with simulated time and node id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulated time of the event, microseconds.
    pub t_us: u64,
    /// Node the event belongs to (dense simnet index).
    pub node: u32,
    /// The event.
    pub event: TraceEvent,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_unique() {
        let events = [
            TraceEvent::ProposalIssued { seq: 0 },
            TraceEvent::Promised { round: 0, by: 0 },
            TraceEvent::Accepted {
                slot: 0,
                round: 0,
                fast: false,
            },
            TraceEvent::Decided {
                slot: 0,
                noop: false,
            },
            TraceEvent::PrepareStarted {
                round: 0,
                fast: false,
            },
            TraceEvent::LeaderElected {
                round: 0,
                fast: false,
            },
            TraceEvent::ModeSwitch {
                from: MODE_FAST,
                to: MODE_CLASSIC,
            },
            TraceEvent::ReconfigProposed {
                epoch: 1,
                adds: 1,
                removes: 1,
            },
            TraceEvent::EpochChanged {
                epoch: 1,
                n: 5,
                slot: 0,
            },
            TraceEvent::StaleEpochRejected {
                from: 0,
                msg_epoch: 0,
                local_epoch: 1,
            },
            TraceEvent::UpdateSubmitted { seq: 0 },
            TraceEvent::BatchFlushed {
                updates: 1,
                trigger: "size",
                first_seq: 0,
            },
            TraceEvent::LogAppend { bytes: 0 },
            TraceEvent::AppendDurable,
            TraceEvent::CheckpointWrite {
                generation: 0,
                slot: 0,
                bytes: 0,
            },
            TraceEvent::CheckpointDurable { generation: 0 },
            TraceEvent::CheckpointLoadStart { bytes: 0 },
            TraceEvent::CheckpointLoaded { slot: 0 },
            TraceEvent::LogReplayStart { bytes: 0 },
            TraceEvent::LogReplayed { records: 0 },
            TraceEvent::RecoveryComplete { slot: 0 },
            TraceEvent::UpdateDelivered {
                slot: 0,
                index: 0,
                submitter: 0,
                seq: 0,
                latency_us: 0,
            },
            TraceEvent::ReplySent { seq: 0 },
            TraceEvent::ClientSample {
                sec: 0,
                ok: 1,
                err: 0,
            },
            TraceEvent::NetSample {
                messages: 0,
                bytes: 0,
            },
            TraceEvent::QueueSample { depth: 0 },
            TraceEvent::Crash,
            TraceEvent::Restart { incarnation: 1 },
            TraceEvent::TornWrite { bytes_kept: 1 },
            TraceEvent::DiskWriteFailed,
            TraceEvent::MsgSent {
                xid: 0,
                to: 0,
                bytes: 0,
            },
            TraceEvent::MsgRecv {
                xid: 0,
                from: 0,
                bytes: 0,
            },
            TraceEvent::MsgTag {
                xid: 0,
                kind: "accept",
                origin: 0,
                cseq: 0,
                slot: 0,
                round: 0,
            },
            TraceEvent::MsgDropped {
                xid: 0,
                to: 0,
                bytes: 0,
                reason: "loss",
            },
            TraceEvent::MsgDuplicated { xid: 0, to: 0 },
            TraceEvent::PeerSuspected {
                peer: 0,
                silent_us: 0,
            },
            TraceEvent::PeerCleared {
                peer: 0,
                suspected_us: 0,
            },
            TraceEvent::PartitionCut { peers: 1 },
            TraceEvent::PartitionHealed,
            TraceEvent::NetFaultSet {
                loss_pct: 1,
                dup_pct: 0,
            },
            TraceEvent::NetFaultCleared,
            TraceEvent::DiskFaultSet {
                fail_pct: 1,
                torn: true,
            },
            TraceEvent::DiskFaultCleared,
            TraceEvent::AuditViolation { count: 1 },
            TraceEvent::AlertPending {
                rule: "replica_down",
                subject: 0,
            },
            TraceEvent::AlertFiring {
                rule: "replica_down",
                subject: 0,
                pending_us: 1,
            },
            TraceEvent::AlertResolved {
                rule: "replica_down",
                subject: 0,
                firing_us: 1,
            },
        ];
        let mut kinds: Vec<&str> = events.iter().map(TraceEvent::kind).collect();
        kinds.sort_unstable();
        let before = kinds.len();
        kinds.dedup();
        assert_eq!(before, kinds.len(), "duplicate kind tag");
    }
}
