//! Lightweight per-node metric registries: counters and log₂ histograms.
//!
//! Metrics are a *summary* companion to the trace: counters count events
//! by kind, histograms aggregate values whose full per-sample stream
//! would bloat the trace (commit latencies, batch sizes, queue depths).
//! Everything is updated with a couple of integer operations, and all
//! state is plain maps of `'static` names so registries never allocate
//! per observation after the first sample of a series.

use std::collections::BTreeMap;

/// Number of power-of-two buckets; covers values up to 2⁴⁰−1 (~12 days
/// in µs), far beyond any simulated run.
const BUCKETS: usize = 40;

/// A histogram with power-of-two buckets, exact count/sum/min/max.
///
/// Bucket `i` holds values `v` with `floor(log2(v+1)) == i`, i.e. bucket
/// 0 is `{0}`, bucket 1 is `{1}`, bucket 2 is `{2,3}`, and so on.
/// Quantiles interpolate linearly inside the bucket holding the ranked
/// sample (and clamp to the exact min/max), so their error is bounded
/// by the spacing of samples within one bucket; the mean is exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hist {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; BUCKETS],
}

impl Default for Hist {
    fn default() -> Self {
        Hist {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }
}

impl Hist {
    /// An empty histogram.
    pub fn new() -> Hist {
        Hist::default()
    }

    /// Records one sample.
    pub fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        let idx = (64 - (v + 1).leading_zeros() as usize - 1).min(BUCKETS - 1);
        if let Some(b) = self.buckets.get_mut(idx) {
            *b += 1;
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact mean of the samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate quantile `q` in `[0,1]`, interpolated linearly within
    /// the log₂ bucket containing the q-th ranked sample (exact min/max
    /// at the ends). Returning the bucket's upper bound instead would
    /// over-report tail quantiles by up to 2×, since a bucket's bounds
    /// are a factor of two apart.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q <= 0.0 {
            return self.min();
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = (q * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                // Bucket i spans [2^i - 1, 2^(i+1) - 2]. Place the ranked
                // sample proportionally to its position among the bucket's
                // `b` occupants (u128 keeps the product from overflowing).
                let lo = (1u64 << i) - 1;
                let hi = (1u64 << (i + 1)) - 2;
                let pos = rank - (seen - b); // 1-based position in bucket
                let est =
                    lo + (((hi - lo) as u128 * (pos - 1) as u128) / (*b).max(1) as u128) as u64;
                return est.clamp(self.min(), self.max);
            }
        }
        self.max
    }
}

/// Counters and histograms of one node.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeMetrics {
    /// Event counts by kind (plus caller-defined counters).
    pub counters: BTreeMap<&'static str, u64>,
    /// Named sample distributions.
    pub hists: BTreeMap<&'static str, Hist>,
}

impl NodeMetrics {
    /// Adds `delta` to counter `name`.
    pub fn count(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Records `value` into histogram `name`.
    pub fn observe(&mut self, name: &'static str, value: u64) {
        self.hists.entry(name).or_default().observe(value);
    }

    /// The value of counter `name` (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The histogram `name`, if any sample was recorded.
    pub fn hist(&self, name: &str) -> Option<&Hist> {
        self.hists.get(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hist_tracks_exact_count_sum_min_max() {
        let mut h = Hist::new();
        for v in [3u64, 9, 1, 100] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 28.25).abs() < 1e-9);
    }

    #[test]
    fn hist_quantiles_bracket_samples() {
        let mut h = Hist::new();
        for v in 0..1000u64 {
            h.observe(v);
        }
        let p50 = h.quantile(0.5);
        assert!((256..=1022).contains(&p50), "p50={p50}");
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 999);
    }

    #[test]
    fn quantile_interpolates_within_bucket() {
        // 0..1000 uniformly: the true p10/p50 are 99/499. Bucket upper
        // bounds (the old behaviour) would report 126/510; interpolation
        // lands within one sample of the truth.
        let mut h = Hist::new();
        for v in 0..1000u64 {
            h.observe(v);
        }
        assert_eq!(h.quantile(0.1), 98);
        assert_eq!(h.quantile(0.5), 498);
        // p99's bucket tops out above the sample max; the clamp keeps the
        // estimate inside the observed range.
        assert_eq!(h.quantile(0.99), 999);

        // A constant series must report that constant at every quantile.
        let mut c = Hist::new();
        for _ in 0..100 {
            c.observe(300);
        }
        for q in [0.01, 0.5, 0.9, 0.99] {
            assert_eq!(c.quantile(q), 300, "q={q}");
        }
    }

    #[test]
    fn empty_hist_is_zeroes() {
        let h = Hist::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn node_metrics_counters_and_hists() {
        let mut m = NodeMetrics::default();
        m.count("accepted", 1);
        m.count("accepted", 2);
        m.observe("commit_latency_us", 40);
        assert_eq!(m.counter("accepted"), 3);
        assert_eq!(m.counter("missing"), 0);
        assert_eq!(m.hist("commit_latency_us").unwrap().count(), 1);
    }
}
