//! The trace sink and the actor-local event buffers feeding it.
//!
//! One [`Tracer`] lives inside the simulation engine, which stamps every
//! event with the current simulated time at the moment it reaches the
//! sink. Because the engine processes events in a deterministic total
//! order (time, then FIFO sequence), the record vector — and hence its
//! JSONL rendering — is bit-identical across runs of the same seed.
//!
//! Sans-io protocol actors (acceptor, learner, leader, middleware)
//! cannot see the engine; they push into an [`EventBuf`] that their
//! driver drains into the tracer right after the handler returns, so
//! buffered events are stamped with the handler's dispatch time.
//!
//! Zero overhead when off: both sinks short-circuit on a single `bool`
//! before touching any other state, and a disabled buffer never
//! allocates (draining an empty `Vec` is a pointer swap).

use crate::event::{TraceEvent, TraceRecord};
use crate::metrics::NodeMetrics;

/// Tracing knob carried by experiment and middleware configs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceConfig {
    /// Master switch. Off by default: no records, no metrics, no
    /// measurable hot-path cost.
    pub enabled: bool,
}

impl TraceConfig {
    /// A config with tracing on.
    pub fn on() -> TraceConfig {
        TraceConfig { enabled: true }
    }
}

/// The run-global trace sink: an append-only record vector plus
/// per-node metric registries.
#[derive(Debug, Default)]
pub struct Tracer {
    enabled: bool,
    records: Vec<TraceRecord>,
    nodes: Vec<NodeMetrics>,
}

impl Tracer {
    /// A disabled tracer (the engine default).
    pub fn disabled() -> Tracer {
        Tracer::default()
    }

    /// A tracer honoring `config`.
    pub fn new(config: TraceConfig) -> Tracer {
        Tracer {
            enabled: config.enabled,
            records: Vec::new(),
            nodes: Vec::new(),
        }
    }

    /// Whether events are being recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Records `event` at time `t_us` on `node` and feeds the node's
    /// metrics. No-op when disabled.
    #[inline]
    pub fn emit(&mut self, t_us: u64, node: u32, event: TraceEvent) {
        if !self.enabled {
            return;
        }
        self.auto_metrics(node, &event);
        self.records.push(TraceRecord { t_us, node, event });
    }

    /// Records a histogram sample without emitting a trace record (for
    /// high-frequency series like queue depths). No-op when disabled.
    #[inline]
    pub fn observe(&mut self, node: u32, metric: &'static str, value: u64) {
        if !self.enabled {
            return;
        }
        self.node_metrics(node).observe(metric, value);
    }

    /// The records emitted so far, in deterministic engine order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Takes ownership of the records (end of run).
    pub fn take_records(&mut self) -> Vec<TraceRecord> {
        std::mem::take(&mut self.records)
    }

    /// Per-node metric registries (indexed by node id; nodes that never
    /// emitted have default registries or are absent past the end).
    pub fn metrics(&self) -> &[NodeMetrics] {
        &self.nodes
    }

    fn node_metrics(&mut self, node: u32) -> &mut NodeMetrics {
        let idx = node as usize;
        if idx >= self.nodes.len() {
            self.nodes.resize(idx + 1, NodeMetrics::default());
        }
        &mut self.nodes[idx]
    }

    /// Standard metric derivations: every event bumps its kind counter;
    /// a few carry values worth aggregating.
    fn auto_metrics(&mut self, node: u32, event: &TraceEvent) {
        let m = self.node_metrics(node);
        m.count(event.kind(), 1);
        match *event {
            TraceEvent::UpdateDelivered { latency_us, .. } if latency_us > 0 => {
                m.observe("commit_latency_us", latency_us);
            }
            TraceEvent::BatchFlushed { updates, .. } => {
                m.observe("batch_updates", updates);
            }
            TraceEvent::LogAppend { bytes } => {
                m.observe("append_bytes", bytes);
            }
            _ => {}
        }
    }
}

/// A deferred event buffer for sans-io actors that cannot reach the
/// engine-owned [`Tracer`] directly.
///
/// Disabled by default (`Default`), so actors constructed in unit tests
/// trace nothing; the owning driver switches it on and drains it.
#[derive(Debug, Default)]
pub struct EventBuf {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl EventBuf {
    /// A buffer with the given state.
    pub fn new(enabled: bool) -> EventBuf {
        EventBuf {
            enabled,
            events: Vec::new(),
        }
    }

    /// Switches buffering on or off.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Whether pushes are being kept.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Buffers `event` (no-op when disabled).
    #[inline]
    pub fn push(&mut self, event: TraceEvent) {
        if self.enabled {
            self.events.push(event);
        }
    }

    /// Takes the buffered events (empty and allocation-free when
    /// disabled).
    pub fn take(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }

    /// Moves buffered events into `out`, preserving order.
    pub fn drain_into(&mut self, out: &mut Vec<TraceEvent>) {
        out.append(&mut self.events);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::disabled();
        t.emit(5, 0, TraceEvent::Crash);
        t.observe(0, "q", 3);
        assert!(t.records().is_empty());
        assert!(t.metrics().is_empty());
    }

    #[test]
    fn enabled_tracer_records_and_counts() {
        let mut t = Tracer::new(TraceConfig::on());
        t.emit(
            10,
            2,
            TraceEvent::UpdateDelivered {
                slot: 1,
                index: 0,
                submitter: 2,
                seq: 0,
                latency_us: 40,
            },
        );
        t.emit(11, 2, TraceEvent::Crash);
        assert_eq!(t.records().len(), 2);
        assert_eq!(t.records()[0].t_us, 10);
        let m = &t.metrics()[2];
        assert_eq!(m.counter("update_delivered"), 1);
        assert_eq!(m.counter("crash"), 1);
        assert_eq!(m.hist("commit_latency_us").unwrap().count(), 1);
    }

    #[test]
    fn event_buf_respects_enabled_flag() {
        let mut b = EventBuf::default();
        b.push(TraceEvent::Crash);
        assert!(b.take().is_empty());
        b.set_enabled(true);
        b.push(TraceEvent::Crash);
        assert_eq!(b.take().len(), 1);
        assert!(b.take().is_empty(), "take drains");
    }
}
