//! The trace sink and the actor-local event buffers feeding it.
//!
//! One [`Tracer`] lives inside the simulation engine, which stamps every
//! event with the current simulated time at the moment it reaches the
//! sink. Because the engine processes events in a deterministic total
//! order (time, then FIFO sequence), the record vector — and hence its
//! JSONL rendering — is bit-identical across runs of the same seed.
//!
//! Sans-io protocol actors (acceptor, learner, leader, middleware)
//! cannot see the engine; they push into an [`EventBuf`] that their
//! driver drains into the tracer right after the handler returns, so
//! buffered events are stamped with the handler's dispatch time.
//!
//! Two sinks share the `emit` entry point:
//!
//! * the **full trace** (`enabled`) — every record is appended and fed
//!   to the per-node metric registries; off by default;
//! * the **flight recorder** (`flight_records > 0`) — a bounded ring of
//!   the most recent records, kept even when the full trace is off, so
//!   a panic or audit violation can dump the moments leading up to it.
//!   The ring is a fixed-capacity `VecDeque`; steady-state cost is one
//!   push + one pop per event with no allocation.
//!
//! True zero cost requires both off (`enabled: false`,
//! `flight_records: 0`): then `emit` short-circuits on a single bool
//! and a disabled buffer never allocates (draining an empty `Vec` is a
//! pointer swap).

use std::collections::VecDeque;

use crate::event::{TraceEvent, TraceRecord};
use crate::metrics::NodeMetrics;

/// Default flight-recorder depth: enough context to see the protocol
/// exchange that led to a violation, small enough to be free.
pub const DEFAULT_FLIGHT_RECORDS: usize = 64;

/// Tracing knob carried by experiment and middleware configs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Master switch for the full trace (records + metrics). Off by
    /// default.
    pub enabled: bool,
    /// Flight-recorder ring depth; `0` disables the ring. Defaults to
    /// [`DEFAULT_FLIGHT_RECORDS`], so every run keeps a short tail of
    /// recent records for crash/violation dumps even with the full
    /// trace off.
    pub flight_records: usize,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            enabled: false,
            flight_records: DEFAULT_FLIGHT_RECORDS,
        }
    }
}

impl TraceConfig {
    /// A config with full tracing on.
    pub fn on() -> TraceConfig {
        TraceConfig {
            enabled: true,
            ..TraceConfig::default()
        }
    }

    /// Whether any sink wants events: the full trace or the flight
    /// ring. Emit points use this (not [`TraceConfig::enabled`]) to
    /// decide whether constructing events is worthwhile.
    #[inline]
    pub fn record_events(&self) -> bool {
        self.enabled || self.flight_records > 0
    }
}

/// The run-global trace sink: an append-only record vector plus
/// per-node metric registries, and the bounded flight-recorder ring.
#[derive(Debug, Default)]
pub struct Tracer {
    enabled: bool,
    flight_cap: usize,
    records: Vec<TraceRecord>,
    flight: VecDeque<TraceRecord>,
    nodes: Vec<NodeMetrics>,
}

impl Tracer {
    /// A fully disabled tracer (no records, no metrics, no flight ring
    /// — the zero-cost engine default for raw-engine users).
    pub fn disabled() -> Tracer {
        Tracer::default()
    }

    /// A tracer honoring `config`.
    pub fn new(config: TraceConfig) -> Tracer {
        Tracer {
            enabled: config.enabled,
            flight_cap: config.flight_records,
            records: Vec::new(),
            flight: VecDeque::with_capacity(config.flight_records),
            nodes: Vec::new(),
        }
    }

    /// Whether the *full* trace is being recorded (records + metrics).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Whether any sink consumes events (full trace or flight ring).
    /// Drivers gate event construction on this.
    #[inline]
    pub fn active(&self) -> bool {
        self.enabled || self.flight_cap > 0
    }

    /// Records `event` at time `t_us` on `node`: into the flight ring
    /// always (when one is configured), and into the full trace +
    /// metrics when enabled. No-op when fully inactive.
    #[inline]
    pub fn emit(&mut self, t_us: u64, node: u32, event: TraceEvent) {
        if !self.active() {
            return;
        }
        if self.flight_cap > 0 {
            if self.flight.len() == self.flight_cap {
                self.flight.pop_front();
            }
            self.flight.push_back(TraceRecord {
                t_us,
                node,
                event: event.clone(),
            });
        }
        if self.enabled {
            self.auto_metrics(node, &event);
            self.records.push(TraceRecord { t_us, node, event });
        }
    }

    /// Records a histogram sample without emitting a trace record (for
    /// high-frequency series like queue depths). No-op unless the full
    /// trace is enabled.
    #[inline]
    pub fn observe(&mut self, node: u32, metric: &'static str, value: u64) {
        if !self.enabled {
            return;
        }
        self.node_metrics(node).observe(metric, value);
    }

    /// The records emitted so far, in deterministic engine order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Takes ownership of the records (end of run).
    pub fn take_records(&mut self) -> Vec<TraceRecord> {
        std::mem::take(&mut self.records)
    }

    /// The flight-recorder ring: the most recent records (oldest
    /// first), bounded by the configured depth. Empty when no ring is
    /// configured.
    pub fn flight_records(&self) -> Vec<TraceRecord> {
        self.flight.iter().cloned().collect()
    }

    /// The flight ring rendered as canonical JSONL (one line per
    /// record, oldest first) — the crash-dump format.
    pub fn flight_jsonl(&self) -> String {
        let mut out = String::new();
        for rec in &self.flight {
            out.push_str(&crate::jsonl::encode(rec));
            out.push('\n');
        }
        out
    }

    /// Per-node metric registries (indexed by node id; nodes that never
    /// emitted have default registries or are absent past the end).
    pub fn metrics(&self) -> &[NodeMetrics] {
        &self.nodes
    }

    fn node_metrics(&mut self, node: u32) -> &mut NodeMetrics {
        let idx = node as usize;
        if idx >= self.nodes.len() {
            self.nodes.resize(idx + 1, NodeMetrics::default());
        }
        // simlint: allow(panic-taint): index is in range by the resize above; returning a non-panicking &mut here fights the borrow checker
        &mut self.nodes[idx]
    }

    /// Standard metric derivations: every event bumps its kind counter;
    /// a few carry values worth aggregating.
    fn auto_metrics(&mut self, node: u32, event: &TraceEvent) {
        let m = self.node_metrics(node);
        m.count(event.kind(), 1);
        match *event {
            TraceEvent::UpdateDelivered { latency_us, .. } if latency_us > 0 => {
                m.observe("commit_latency_us", latency_us);
            }
            TraceEvent::BatchFlushed { updates, .. } => {
                m.observe("batch_updates", updates);
            }
            TraceEvent::LogAppend { bytes } => {
                m.observe("append_bytes", bytes);
            }
            TraceEvent::PeerSuspected { silent_us, .. } => {
                m.observe("fd_silence_us", silent_us);
            }
            TraceEvent::PeerCleared { suspected_us, .. } => {
                m.observe("fd_suspected_us", suspected_us);
            }
            _ => {}
        }
    }
}

/// A deferred event buffer for sans-io actors that cannot reach the
/// engine-owned [`Tracer`] directly.
///
/// Disabled by default (`Default`), so actors constructed in unit tests
/// trace nothing; the owning driver switches it on and drains it.
#[derive(Debug, Default)]
pub struct EventBuf {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl EventBuf {
    /// A buffer with the given state.
    pub fn new(enabled: bool) -> EventBuf {
        EventBuf {
            enabled,
            events: Vec::new(),
        }
    }

    /// Switches buffering on or off.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Whether pushes are being kept.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Buffers `event` (no-op when disabled).
    #[inline]
    pub fn push(&mut self, event: TraceEvent) {
        if self.enabled {
            self.events.push(event);
        }
    }

    /// Takes the buffered events (empty and allocation-free when
    /// disabled).
    pub fn take(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }

    /// Moves buffered events into `out`, preserving order.
    pub fn drain_into(&mut self, out: &mut Vec<TraceEvent>) {
        out.append(&mut self.events);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::disabled();
        t.emit(5, 0, TraceEvent::Crash);
        t.observe(0, "q", 3);
        assert!(t.records().is_empty());
        assert!(t.metrics().is_empty());
        assert!(t.flight_records().is_empty());
        assert!(!t.active());
    }

    #[test]
    fn enabled_tracer_records_and_counts() {
        let mut t = Tracer::new(TraceConfig::on());
        t.emit(
            10,
            2,
            TraceEvent::UpdateDelivered {
                slot: 1,
                index: 0,
                submitter: 2,
                seq: 0,
                latency_us: 40,
            },
        );
        t.emit(11, 2, TraceEvent::Crash);
        assert_eq!(t.records().len(), 2);
        assert_eq!(t.records()[0].t_us, 10);
        let m = &t.metrics()[2];
        assert_eq!(m.counter("update_delivered"), 1);
        assert_eq!(m.counter("crash"), 1);
        assert_eq!(m.hist("commit_latency_us").unwrap().count(), 1);
    }

    #[test]
    fn flight_ring_keeps_only_the_tail_without_full_records() {
        // Flight-only mode: the default config (tracing off, ring on).
        let mut t = Tracer::new(TraceConfig {
            enabled: false,
            flight_records: 3,
        });
        assert!(t.active());
        assert!(!t.enabled());
        for i in 0..10u64 {
            t.emit(i, 0, TraceEvent::UpdateSubmitted { seq: i });
        }
        assert!(t.records().is_empty(), "full trace stays off");
        assert!(t.metrics().is_empty(), "metrics need the full trace");
        let tail = t.flight_records();
        assert_eq!(tail.len(), 3);
        assert_eq!(tail[0].t_us, 7, "oldest surviving record");
        assert_eq!(tail[2].t_us, 9);
        let jsonl = t.flight_jsonl();
        assert_eq!(jsonl.lines().count(), 3);
        assert!(jsonl.starts_with("{\"t\":7,"), "canonical JSONL: {jsonl}");
    }

    #[test]
    fn flight_ring_mirrors_the_full_trace_tail_when_enabled() {
        let mut t = Tracer::new(TraceConfig {
            enabled: true,
            flight_records: 2,
        });
        for i in 0..5u64 {
            t.emit(i, 1, TraceEvent::UpdateSubmitted { seq: i });
        }
        assert_eq!(t.records().len(), 5);
        let tail = t.flight_records();
        assert_eq!(tail.len(), 2);
        assert_eq!(tail, t.records()[3..].to_vec());
    }

    #[test]
    fn zero_flight_records_restores_zero_cost() {
        let mut t = Tracer::new(TraceConfig {
            enabled: false,
            flight_records: 0,
        });
        assert!(!t.active());
        t.emit(1, 0, TraceEvent::Crash);
        assert!(t.flight_records().is_empty());
        assert!(t.flight_jsonl().is_empty());
    }

    #[test]
    fn event_buf_respects_enabled_flag() {
        let mut b = EventBuf::default();
        b.push(TraceEvent::Crash);
        assert!(b.take().is_empty());
        b.set_enabled(true);
        b.push(TraceEvent::Crash);
        assert_eq!(b.take().len(), 1);
        assert!(b.take().is_empty(), "take drains");
    }
}
