//! Windowed availability timelines and availability reports.
//!
//! The paper's headline evidence is a *curve*, not an aggregate: WIPS
//! sampled in short windows across a faultload run, showing the dip at
//! the crash, the failover plateau, and the recovery ramp (PAPER.md
//! §5, Figs. 4–8). This module reduces a [`TraceRecord`] stream into
//! exactly that curve — per-window interaction throughput, committed
//! updates, commit-latency quantiles, queue depth, disk and network
//! activity — with fault/recovery markers aligned to window boundaries,
//! and derives an [`AvailabilityReport`] per crash (time to detect,
//! time to failover, degraded-window length, dip depth, ramp time back
//! to 95 % of the pre-crash baseline).
//!
//! Everything here is integer bucketing over already-deterministic
//! traces, so the same `(seed, config)` pair renders byte-identical
//! CSV/JSONL output.

use std::collections::BTreeMap;

use crate::event::{TraceEvent, TraceRecord};
use crate::metrics::Hist;

/// Tuning knobs for windowing and availability detection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelineConfig {
    /// Window length in µs (default 5 s — fine enough to see a crash
    /// dip on a quick run, coarse enough to smooth think-time noise).
    pub window_us: u64,
    /// How many pre-crash windows form the WIPS baseline mean.
    pub baseline_windows: usize,
    /// A window is *degraded* when its WIPS drops below this fraction
    /// of baseline (the paper's 95 % ramp-back criterion, inverted).
    pub degraded_frac: f64,
    /// Failover is reached at the first window back above this fraction
    /// of baseline (service is limping but answering again).
    pub failover_frac: f64,
    /// Degradation must begin within this many windows after the crash
    /// to be attributed to it.
    pub grace_windows: usize,
}

impl Default for TimelineConfig {
    fn default() -> Self {
        TimelineConfig {
            window_us: 5_000_000,
            baseline_windows: 12,
            degraded_frac: 0.95,
            failover_frac: 0.5,
            grace_windows: 2,
        }
    }
}

/// A fault or recovery event snapped to its containing window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Marker {
    /// Event time, µs.
    pub t_us: u64,
    /// Node the event belongs to.
    pub node: u32,
    /// The event's canonical kind tag (`"crash"`, `"restart"`, …).
    pub kind: &'static str,
    /// Index of the window containing `t_us`.
    pub window: usize,
}

/// One window's aggregated series values.
#[derive(Debug, Clone, Default)]
pub struct Window {
    /// Window start, µs.
    pub start_us: u64,
    /// Successful client interactions completed in the window.
    pub ok: u64,
    /// Failed client interactions in the window.
    pub err: u64,
    /// Updates committed (applied on their submitter) in the window.
    pub committed: u64,
    /// Submit-to-apply latencies of those commits.
    pub latency: Hist,
    /// Largest sampled work-queue depth across all servers.
    pub queue_depth_max: u64,
    /// Stable-log appends issued in the window.
    pub disk_appends: u64,
    /// Network messages sent in the window (differenced samples).
    pub net_messages: u64,
    /// Network payload bytes carried in the window.
    pub net_bytes: u64,
}

impl Window {
    /// Web interactions per second over the window.
    pub fn wips(&self, window_us: u64) -> f64 {
        per_second(self.ok, window_us)
    }

    /// Failed interactions per second over the window.
    pub fn errors_per_s(&self, window_us: u64) -> f64 {
        per_second(self.err, window_us)
    }

    /// Committed updates per second over the window.
    pub fn committed_per_s(&self, window_us: u64) -> f64 {
        per_second(self.committed, window_us)
    }
}

fn per_second(count: u64, window_us: u64) -> f64 {
    if window_us == 0 {
        0.0
    } else {
        count as f64 * 1_000_000.0 / window_us as f64
    }
}

/// A whole run reduced to per-window series plus event markers.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    /// Window length, µs.
    pub window_us: u64,
    /// The windows, index 0 starting at t = 0.
    pub windows: Vec<Window>,
    /// Fault/recovery markers in trace order.
    pub markers: Vec<Marker>,
    /// Dominant critical-path phase per window, when a span profile was
    /// attached (see [`crate::spans::SpanProfile::dominant_phases`]).
    pub dominant_phase: Vec<Option<&'static str>>,
}

/// Event kinds that become timeline markers.
fn marker_kind(event: &TraceEvent) -> Option<&'static str> {
    use TraceEvent::*;
    match event {
        Crash
        | Restart { .. }
        | RecoveryComplete { .. }
        | LeaderElected { .. }
        | ReconfigProposed { .. }
        | EpochChanged { .. }
        | PartitionCut { .. }
        | PartitionHealed
        | NetFaultSet { .. }
        | NetFaultCleared
        | DiskFaultSet { .. }
        | DiskFaultCleared
        // Operator-visible alert windows next to the fault markers
        // (pending transitions are deliberately omitted: they mark
        // sub-debounce blips and would drown the plot).
        | AlertFiring { .. }
        | AlertResolved { .. } => Some(event.kind()),
        _ => None,
    }
}

impl Timeline {
    /// Reduces one run's records into a timeline with `window_us`
    /// windows. Records must be in engine (time) order, as traced.
    pub fn from_records(records: &[TraceRecord], window_us: u64) -> Timeline {
        let window_us = window_us.max(1);
        // The run extends to the latest stamp we can see; a client
        // sample describes a whole second, which may end after the
        // record that reported it.
        let mut end_us = 0u64;
        for rec in records {
            end_us = end_us.max(rec.t_us);
            if let TraceEvent::ClientSample { sec, .. } = rec.event {
                end_us = end_us.max((sec + 1) * 1_000_000);
            }
        }
        let n = (end_us / window_us) as usize + 1;
        let mut tl = Timeline {
            window_us,
            windows: (0..n)
                .map(|w| Window {
                    start_us: w as u64 * window_us,
                    ..Window::default()
                })
                .collect(),
            markers: Vec::new(),
            dominant_phase: vec![None; n],
        };
        // Per-node last cumulative network sample, for differencing.
        let mut net_prev: BTreeMap<u32, (u64, u64)> = BTreeMap::new();
        for rec in records {
            let w = ((rec.t_us / window_us) as usize).min(n - 1);
            match rec.event {
                TraceEvent::ClientSample { sec, ok, err } => {
                    // The sample names its second explicitly, so counts
                    // land in the right window no matter when the
                    // client got around to emitting them.
                    let sw = (((sec * 1_000_000) / window_us) as usize).min(n - 1);
                    tl.windows[sw].ok += ok;
                    tl.windows[sw].err += err;
                }
                TraceEvent::UpdateDelivered {
                    submitter,
                    latency_us,
                    ..
                } => {
                    // Every replica applies every update; count each
                    // once, on its submitter.
                    if submitter == rec.node {
                        tl.windows[w].committed += 1;
                        if latency_us > 0 {
                            tl.windows[w].latency.observe(latency_us);
                        }
                    }
                }
                TraceEvent::QueueSample { depth } => {
                    tl.windows[w].queue_depth_max = tl.windows[w].queue_depth_max.max(depth);
                }
                TraceEvent::LogAppend { .. } => {
                    tl.windows[w].disk_appends += 1;
                }
                TraceEvent::NetSample { messages, bytes } => {
                    let (pm, pb) = net_prev
                        .insert(rec.node, (messages, bytes))
                        .unwrap_or((0, 0));
                    tl.windows[w].net_messages += messages.saturating_sub(pm);
                    tl.windows[w].net_bytes += bytes.saturating_sub(pb);
                }
                _ => {
                    if let Some(kind) = marker_kind(&rec.event) {
                        tl.markers.push(Marker {
                            t_us: rec.t_us,
                            node: rec.node,
                            kind,
                            window: w,
                        });
                    }
                }
            }
        }
        tl
    }

    /// Builds a timeline from per-second ok/error series (as produced
    /// by the untraced experiment recorder) plus raw `(t_us, node,
    /// kind)` fault markers. Only the interaction columns are
    /// populated; commit/disk/net series stay zero.
    pub fn from_series(
        ok: &[u32],
        err: &[u32],
        window_us: u64,
        markers: &[(u64, u32, &'static str)],
    ) -> Timeline {
        let window_us = window_us.max(1);
        let mut end_us = (ok.len().max(err.len()) as u64) * 1_000_000;
        for (t, _, _) in markers {
            end_us = end_us.max(*t);
        }
        let n = (end_us.saturating_sub(1) / window_us) as usize + 1;
        let mut tl = Timeline {
            window_us,
            windows: (0..n)
                .map(|w| Window {
                    start_us: w as u64 * window_us,
                    ..Window::default()
                })
                .collect(),
            markers: Vec::new(),
            dominant_phase: vec![None; n],
        };
        for (sec, count) in ok.iter().enumerate() {
            let w = (((sec as u64) * 1_000_000 / window_us) as usize).min(n - 1);
            tl.windows[w].ok += *count as u64;
        }
        for (sec, count) in err.iter().enumerate() {
            let w = (((sec as u64) * 1_000_000 / window_us) as usize).min(n - 1);
            tl.windows[w].err += *count as u64;
        }
        for (t_us, node, kind) in markers {
            tl.markers.push(Marker {
                t_us: *t_us,
                node: *node,
                kind,
                window: ((*t_us / window_us) as usize).min(n - 1),
            });
        }
        tl
    }

    /// The CSV header matching [`Timeline::csv_rows`].
    pub fn csv_header() -> &'static str {
        "run,window,start_s,wips,errors_per_s,committed_per_s,\
         commit_p50_ms,commit_p95_ms,commit_p99_ms,queue_depth_max,\
         disk_appends,net_messages,net_bytes,dominant_phase,events"
    }

    /// Renders the windows as CSV rows (no header), one per window,
    /// labelled with `run`. Floats use fixed decimals so same-seed
    /// output is byte-identical and diffs stay readable.
    pub fn csv_rows(&self, run: &str) -> String {
        let mut out = String::new();
        let run = csv_field(run);
        for (w, win) in self.windows.iter().enumerate() {
            let events = self.window_events(w);
            out.push_str(&format!(
                "{run},{w},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                fixed(win.start_us as f64 / 1_000_000.0, 2),
                fixed(win.wips(self.window_us), 2),
                fixed(win.errors_per_s(self.window_us), 2),
                fixed(win.committed_per_s(self.window_us), 2),
                fixed(win.latency.quantile(0.5) as f64 / 1_000.0, 3),
                fixed(win.latency.quantile(0.95) as f64 / 1_000.0, 3),
                fixed(win.latency.quantile(0.99) as f64 / 1_000.0, 3),
                win.queue_depth_max,
                win.disk_appends,
                win.net_messages,
                win.net_bytes,
                self.dominant_phase.get(w).copied().flatten().unwrap_or(""),
                events,
            ));
        }
        out
    }

    /// Renders the windows as JSONL, one object per window, labelled
    /// with `run`. All values are integers or strings, so the encoding
    /// is trivially canonical.
    pub fn to_jsonl(&self, run: &str) -> String {
        let mut out = String::new();
        let run = crate::jsonl::quote(run);
        for (w, win) in self.windows.iter().enumerate() {
            let phase = match self.dominant_phase.get(w).copied().flatten() {
                Some(p) => format!("\"{p}\""),
                None => "null".to_string(),
            };
            let events: Vec<String> = self
                .markers
                .iter()
                .filter(|m| m.window == w)
                .map(|m| format!("\"{}:{}\"", m.kind, m.node))
                .collect();
            out.push_str(&format!(
                "{{\"run\":{run},\"window\":{w},\"start_us\":{},\"ok\":{},\"err\":{},\
                 \"committed\":{},\"commit_p50_us\":{},\"commit_p95_us\":{},\
                 \"commit_p99_us\":{},\"queue_depth_max\":{},\"disk_appends\":{},\
                 \"net_messages\":{},\"net_bytes\":{},\"dominant_phase\":{phase},\
                 \"events\":[{}]}}\n",
                win.start_us,
                win.ok,
                win.err,
                win.committed,
                win.latency.quantile(0.5),
                win.latency.quantile(0.95),
                win.latency.quantile(0.99),
                win.queue_depth_max,
                win.disk_appends,
                win.net_messages,
                win.net_bytes,
                events.join(","),
            ));
        }
        out
    }

    /// Semicolon-joined `kind:node` markers inside window `w`.
    fn window_events(&self, w: usize) -> String {
        let tags: Vec<String> = self
            .markers
            .iter()
            .filter(|m| m.window == w)
            .map(|m| format!("{}:{}", m.kind, m.node))
            .collect();
        tags.join(";")
    }
}

/// Fixed-decimal float formatting (deterministic, diff-friendly).
fn fixed(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

/// Quotes a CSV field only when it needs it.
fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Availability decomposition of one crash incident, derived from the
/// WIPS curve (the paper's Table/Figure view of a faultload).
#[derive(Debug, Clone, PartialEq)]
pub struct AvailabilityReport {
    /// The crashed node.
    pub node: u32,
    /// Crash time, µs.
    pub crash_at_us: u64,
    /// Window containing the crash.
    pub crash_window: usize,
    /// Mean WIPS over the pre-crash baseline windows.
    pub baseline_wips: f64,
    /// Crash → the victim's restart marker (the watchdog delay).
    pub time_to_detect_us: Option<u64>,
    /// Crash → end of the first window back above the failover
    /// fraction of baseline (service answering again, even degraded).
    pub time_to_failover_us: Option<u64>,
    /// First degraded window (inclusive), when any window degraded.
    pub degraded_from: Option<usize>,
    /// One past the last degraded window.
    pub degraded_until: Option<usize>,
    /// Length of the degraded stretch, µs (0 when none).
    pub degraded_us: u64,
    /// Deepest WIPS dip during the degraded stretch, as a percentage
    /// of baseline lost (100 = total outage, 0 = no dip).
    pub wips_dip_pct: f64,
    /// Crash → start of the first window back at ≥ `degraded_frac` of
    /// baseline. `None` when the run never degraded or never ramped
    /// back inside the trace.
    pub ramp_to_95pct_us: Option<u64>,
}

impl AvailabilityReport {
    /// Whether the degraded stretch brackets the crash: degradation
    /// begins in (or within grace of) the crash window and ends after
    /// it.
    pub fn brackets_crash(&self) -> bool {
        match (self.degraded_from, self.degraded_until) {
            (Some(from), Some(until)) => from >= self.crash_window && until > self.crash_window,
            _ => false,
        }
    }
}

/// Derives one [`AvailabilityReport`] per crash marker in `tl`.
pub fn availability_reports(tl: &Timeline, cfg: &TimelineConfig) -> Vec<AvailabilityReport> {
    availability_reports_for(tl, cfg, &["crash"])
}

/// Derives one [`AvailabilityReport`] per marker whose kind is in
/// `kinds` — the incident anchors the baseline/degradation analysis.
/// Besides `"crash"`, useful anchors are `"reconfig_proposed"` (the
/// operator submits a membership change) and `"epoch_change"` (the
/// fence delivers). Note several replicas trace the same epoch change,
/// one marker each; callers wanting one report per incident should
/// keep the first report per anchor window.
pub fn availability_reports_for(
    tl: &Timeline,
    cfg: &TimelineConfig,
    kinds: &[&str],
) -> Vec<AvailabilityReport> {
    let n = tl.windows.len();
    let wips: Vec<f64> = tl.windows.iter().map(|w| w.wips(tl.window_us)).collect();
    let mut out = Vec::new();
    for (mi, marker) in tl.markers.iter().enumerate() {
        if !kinds.contains(&marker.kind) {
            continue;
        }
        let cw = marker.window;
        // Baseline: mean WIPS over the windows before the crash window
        // (bounded lookback). A crash in window 0 has no history; fall
        // back to the crash window itself.
        let lo = cw.saturating_sub(cfg.baseline_windows);
        let baseline = if cw > lo {
            wips[lo..cw].iter().sum::<f64>() / (cw - lo) as f64
        } else {
            wips[cw]
        };
        let degraded_threshold = cfg.degraded_frac * baseline;
        // Find the degraded stretch: first window at/after the crash
        // (within grace) below threshold, extended while still below.
        let from = (cw..n.min(cw + cfg.grace_windows + 1)).find(|&w| wips[w] < degraded_threshold);
        let until = from.map(|f| {
            let mut u = f;
            while u < n && wips[u] < degraded_threshold {
                u += 1;
            }
            u
        });
        let degraded_us = match (from, until) {
            (Some(f), Some(u)) => (u - f) as u64 * tl.window_us,
            _ => 0,
        };
        // Ramp-back: the start of the first window back at >= the
        // degraded threshold. None when degradation runs off the end.
        let ramp = match (from, until) {
            (Some(_), Some(u)) if u < n => {
                Some((u as u64 * tl.window_us).saturating_sub(marker.t_us))
            }
            _ => None,
        };
        let dip = match (from, until) {
            (Some(f), Some(u)) if baseline > 0.0 && u > f => {
                let min = wips[f..u].iter().copied().fold(f64::INFINITY, f64::min);
                100.0 * (1.0 - min / baseline)
            }
            _ => 0.0,
        };
        // Failover: first window (from the degradation start, else the
        // crash window) whose WIPS is back above the failover fraction;
        // the service has failed over once that window *ends*.
        let failover_threshold = cfg.failover_frac * baseline;
        let time_to_failover = (from.unwrap_or(cw)..n)
            .find(|w| wips[*w] >= failover_threshold)
            .map(|w| ((w as u64 + 1) * tl.window_us).saturating_sub(marker.t_us));
        // Detection: the victim's next restart marker.
        let time_to_detect = tl.markers[mi..]
            .iter()
            .find(|m| m.kind == "restart" && m.node == marker.node && m.t_us >= marker.t_us)
            .map(|m| m.t_us - marker.t_us);
        out.push(AvailabilityReport {
            node: marker.node,
            crash_at_us: marker.t_us,
            crash_window: cw,
            baseline_wips: baseline,
            time_to_detect_us: time_to_detect,
            time_to_failover_us: time_to_failover,
            degraded_from: from,
            degraded_until: until,
            degraded_us,
            wips_dip_pct: dip,
            ramp_to_95pct_us: ramp,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t_us: u64, node: u32, event: TraceEvent) -> TraceRecord {
        TraceRecord { t_us, node, event }
    }

    fn sample(sec: u64, ok: u64) -> TraceRecord {
        rec(
            (sec + 1) * 1_000_000,
            9,
            TraceEvent::ClientSample { sec, ok, err: 0 },
        )
    }

    #[test]
    fn outage_produces_empty_windows() {
        // Traffic for 5 s, total outage for 10 s, traffic again: the
        // outage windows must exist and read zero, not be skipped.
        let mut records: Vec<TraceRecord> = (0..5).map(|s| sample(s, 10)).collect();
        records.extend((15..20).map(|s| sample(s, 10)));
        let tl = Timeline::from_records(&records, 5_000_000);
        assert_eq!(tl.windows.len(), 5);
        assert_eq!(tl.windows[0].ok, 50);
        assert_eq!(tl.windows[1].ok, 0, "outage window present and empty");
        assert_eq!(tl.windows[2].ok, 0);
        assert_eq!(tl.windows[3].ok, 50);
        assert_eq!(tl.windows[1].wips(tl.window_us), 0.0);
    }

    #[test]
    fn run_shorter_than_one_window() {
        let records = vec![
            sample(0, 7),
            rec(800_000, 0, TraceEvent::LogAppend { bytes: 100 }),
        ];
        let tl = Timeline::from_records(&records, 5_000_000);
        assert_eq!(tl.windows.len(), 1);
        assert_eq!(tl.windows[0].ok, 7);
        assert_eq!(tl.windows[0].disk_appends, 1);
        // Rates still normalise by the full window length.
        assert!((tl.windows[0].wips(tl.window_us) - 1.4).abs() < 1e-9);
    }

    #[test]
    fn crash_exactly_on_window_boundary() {
        // Baseline 10 wips for 10 s, crash at exactly t = 10 s (the
        // first µs of window 2), outage for 5 s, recovery after.
        let mut records: Vec<TraceRecord> = (0..10).map(|s| sample(s, 10)).collect();
        records.push(rec(10_000_000, 0, TraceEvent::Crash));
        records.push(rec(12_000_000, 0, TraceEvent::Restart { incarnation: 1 }));
        records.extend((15..20).map(|s| sample(s, 10)));
        let tl = Timeline::from_records(&records, 5_000_000);
        let marker = tl.markers.iter().find(|m| m.kind == "crash").unwrap();
        assert_eq!(
            marker.window, 2,
            "boundary crash lands in the window it starts"
        );

        let reports = availability_reports(&tl, &TimelineConfig::default());
        assert_eq!(reports.len(), 1);
        let r = &reports[0];
        assert_eq!(r.crash_window, 2);
        assert!((r.baseline_wips - 10.0).abs() < 1e-9);
        assert_eq!(r.degraded_from, Some(2));
        assert_eq!(r.degraded_until, Some(3));
        assert!(r.brackets_crash());
        assert_eq!(r.degraded_us, 5_000_000);
        assert_eq!(r.time_to_detect_us, Some(2_000_000));
        // Ramp: window 3 (15 s) is back at baseline; crash was at 10 s.
        assert_eq!(r.ramp_to_95pct_us, Some(5_000_000));
        // Failover: window 3 is the first back above 50 % of baseline,
        // complete at 20 s.
        assert_eq!(r.time_to_failover_us, Some(10_000_000));
        assert!((r.wips_dip_pct - 100.0).abs() < 1e-9);
    }

    #[test]
    fn degradation_running_off_the_end_has_no_ramp() {
        let mut records: Vec<TraceRecord> = (0..10).map(|s| sample(s, 10)).collect();
        records.push(rec(10_500_000, 1, TraceEvent::Crash));
        // Trace ends while still degraded (a lone empty-window tail).
        records.push(rec(14_000_000, 1, TraceEvent::QueueSample { depth: 3 }));
        let tl = Timeline::from_records(&records, 5_000_000);
        let reports = availability_reports(&tl, &TimelineConfig::default());
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].ramp_to_95pct_us, None);
        assert_eq!(reports[0].time_to_failover_us, None);
        assert!(reports[0].degraded_us > 0);
    }

    #[test]
    fn commit_and_resource_columns_aggregate() {
        let records = vec![
            rec(
                1_000,
                0,
                TraceEvent::UpdateDelivered {
                    slot: 1,
                    index: 0,
                    submitter: 0,
                    seq: 0,
                    latency_us: 400,
                },
            ),
            // Remote application of the same update: not re-counted.
            rec(
                1_200,
                1,
                TraceEvent::UpdateDelivered {
                    slot: 1,
                    index: 0,
                    submitter: 0,
                    seq: 0,
                    latency_us: 0,
                },
            ),
            rec(2_000, 0, TraceEvent::QueueSample { depth: 4 }),
            rec(2_500, 0, TraceEvent::QueueSample { depth: 2 }),
            rec(
                3_000,
                2,
                TraceEvent::NetSample {
                    messages: 100,
                    bytes: 5_000,
                },
            ),
            rec(
                4_000,
                2,
                TraceEvent::NetSample {
                    messages: 160,
                    bytes: 9_000,
                },
            ),
        ];
        let tl = Timeline::from_records(&records, 5_000_000);
        let w = &tl.windows[0];
        assert_eq!(w.committed, 1);
        assert_eq!(w.latency.count(), 1);
        assert_eq!(w.queue_depth_max, 4);
        // First sample seeds the cumulative counter, second differences.
        assert_eq!(w.net_messages, 160);
        assert_eq!(w.net_bytes, 9_000);
    }

    #[test]
    fn from_series_matches_from_records_interactions() {
        let ok: Vec<u32> = (0..20)
            .map(|s| if (5..15).contains(&s) { 0 } else { 10 })
            .collect();
        let err = vec![0u32; 20];
        let tl = Timeline::from_series(&ok, &err, 5_000_000, &[(7_000_000, 0, "crash")]);
        assert_eq!(tl.windows.len(), 4);
        assert_eq!(tl.windows[0].ok, 50);
        assert_eq!(tl.windows[1].ok, 0);
        assert_eq!(tl.markers.len(), 1);
        assert_eq!(tl.markers[0].window, 1);
        let reports = availability_reports(&tl, &TimelineConfig::default());
        assert_eq!(reports.len(), 1);
        assert!(reports[0].ramp_to_95pct_us.is_some());
    }

    #[test]
    fn alert_lifecycle_events_become_markers() {
        let records = vec![
            sample(0, 3),
            rec(500_000, 0, TraceEvent::Crash),
            rec(
                2_000_000,
                5,
                TraceEvent::AlertPending {
                    rule: "replica_down",
                    subject: 0,
                },
            ),
            rec(
                3_000_000,
                5,
                TraceEvent::AlertFiring {
                    rule: "replica_down",
                    subject: 0,
                    pending_us: 1_000_000,
                },
            ),
            rec(
                9_000_000,
                5,
                TraceEvent::AlertResolved {
                    rule: "replica_down",
                    subject: 0,
                    firing_us: 6_000_000,
                },
            ),
        ];
        let tl = Timeline::from_records(&records, 5_000_000);
        let kinds: Vec<&str> = tl.markers.iter().map(|m| m.kind).collect();
        // Firing and resolve land next to the crash; pending stays out.
        assert_eq!(kinds, ["crash", "alert_firing", "alert_resolved"]);
        assert!(tl.window_events(0).contains("alert_firing:5"));
    }

    #[test]
    fn csv_and_jsonl_are_stable() {
        let records = vec![sample(0, 3), rec(500_000, 0, TraceEvent::Crash)];
        let tl = Timeline::from_records(&records, 5_000_000);
        let csv = tl.csv_rows("run A");
        assert_eq!(
            csv,
            "run A,0,0.00,0.60,0.00,0.00,0.000,0.000,0.000,0,0,0,0,,crash:0\n"
        );
        let jsonl = tl.to_jsonl("run A");
        assert!(jsonl.starts_with("{\"run\":\"run A\",\"window\":0,"));
        assert!(jsonl.contains("\"events\":[\"crash:0\"]"));
        // Labels with commas stay one CSV field.
        assert!(tl.csv_rows("a,b").starts_with("\"a,b\","));
        assert_eq!(Timeline::csv_header().split(',').count(), 15);
        assert_eq!(csv.trim_end().split(',').count(), 15);
    }
}
