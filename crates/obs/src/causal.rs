//! Cross-node causal reconstruction and distributed blame attribution.
//!
//! [`spans`](crate::spans) telescopes an update's pipeline *on its
//! submitter*; this module follows the update **across the wire**. Every
//! protocol message carries a causal tag (`msg_tag`: origin node, origin
//! sequence, slot/ballot provenance) and every transmission emits paired
//! `msg_sent`/`msg_recv` records sharing a transmission id (`xid`), so
//! the decided value's history can be chained backwards from the
//! submitter's decide through the quorum:
//!
//! ```text
//! submit ─q─ flush ─c─ send(propose) ─r─ ··net·· recv@leader ─c─
//!   send(accept) ─r─ ··net·· recv@acceptor ─c─ log append ─D─
//!   append durable ─c─ send(accepted) ─r─ ··net·· recv@submitter ─c─
//!   decide ─q─ deliver
//! ```
//!
//! (`q` queueing, `c` CPU service, `r` retransmit stall, `D` disk
//! fsync; on the fast path the leader hop collapses because the
//! submitter's `fast_propose` goes straight to the acceptors.) Each
//! inter-anchor gap becomes a [`BlameSegment`] charged to one node (and
//! one link for net transit). Anchors are clamped monotonically into
//! `[submit, deliver]`, so a missing or mis-attributed anchor collapses
//! its segment to zero length but can never break the exactness
//! invariant: **a path's segments always telescope to its measured
//! commit latency** ([`CausalPath::telescopes`]).
//!
//! Attribution is per-anchor best effort. Retransmit stalls are
//! measured as *earliest send of the same logical message* (same node,
//! message kind, slot, ballot, destination) to *the send that was
//! actually received*; slot-less kinds (`propose`/`fast_propose`) get a
//! fresh causal seq per transmission, so their retransmissions surface
//! as CPU time at the sender instead — noted here so blame tables are
//! read correctly.

use std::collections::BTreeMap;

use crate::event::{TraceEvent, TraceRecord};

/// Sentinel for "no slot/ballot provenance" in causal tags
/// (`msg_tag.slot`/`msg_tag.round`).
pub const TAG_NONE: u64 = u64::MAX;

/// Where a microsecond of commit latency went.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum BlameCategory {
    /// Waiting in a middleware queue (batch window, apply backlog).
    Queueing,
    /// Handler execution between two local anchors.
    CpuService,
    /// On the wire between a send and its matching receive.
    NetTransit,
    /// Between the first transmission of a logical message and the one
    /// that finally got through (loss/timeout stalls).
    RetransmitStall,
    /// Stable-log append issued → durable (the acceptor's fsync).
    DiskFsync,
}

impl BlameCategory {
    /// All categories in canonical (table/CSV) order.
    pub const ALL: [BlameCategory; 5] = [
        BlameCategory::Queueing,
        BlameCategory::CpuService,
        BlameCategory::NetTransit,
        BlameCategory::RetransmitStall,
        BlameCategory::DiskFsync,
    ];

    /// Stable snake_case name for exports.
    pub fn name(self) -> &'static str {
        match self {
            BlameCategory::Queueing => "queueing",
            BlameCategory::CpuService => "cpu_service",
            BlameCategory::NetTransit => "net_transit",
            BlameCategory::RetransmitStall => "retransmit_stall",
            BlameCategory::DiskFsync => "disk_fsync",
        }
    }

    /// Index into [`BlameCategory::ALL`]-ordered arrays.
    pub fn index(self) -> usize {
        match self {
            BlameCategory::Queueing => 0,
            BlameCategory::CpuService => 1,
            BlameCategory::NetTransit => 2,
            BlameCategory::RetransmitStall => 3,
            BlameCategory::DiskFsync => 4,
        }
    }
}

/// One contiguous stretch of a distributed critical path, charged to
/// `node` (and, for net transit, the link `node → peer`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlameSegment {
    /// What the time was spent on.
    pub category: BlameCategory,
    /// The node the time is charged to (the sender, for net transit).
    pub node: u32,
    /// The receiving end of the link, for net-transit segments.
    pub peer: Option<u32>,
    /// Segment start (µs, sim time).
    pub start_us: u64,
    /// Segment length (µs).
    pub dur_us: u64,
}

/// The distributed critical path of one locally-submitted update, from
/// client submit to learner delivery on the submitter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CausalPath {
    /// Submitting node.
    pub node: u32,
    /// The submitter's update sequence number.
    pub seq: u64,
    /// The consensus slot the update was decided in.
    pub slot: u64,
    /// Client submit time (µs).
    pub submit_us: u64,
    /// Group-commit flush time (clamped into the path).
    pub flush_us: u64,
    /// Quorum decide time on the submitter (clamped into the path).
    pub decide_us: u64,
    /// Delivery (apply) time on the submitter.
    pub deliver_us: u64,
    /// Measured commit latency: `deliver_us - submit_us`.
    pub total_us: u64,
    /// Blame segments in path order; they partition
    /// `[submit_us, deliver_us]`.
    pub segments: Vec<BlameSegment>,
}

impl CausalPath {
    /// The exactness invariant: segments telescope to the measured
    /// commit latency. True by construction; asserted in tests and
    /// `exp_causal --gate`.
    pub fn telescopes(&self) -> bool {
        self.segments.iter().map(|s| s.dur_us).sum::<u64>() == self.total_us
    }

    /// Total µs this path charges to `category`.
    pub fn blame(&self, category: BlameCategory) -> u64 {
        self.segments
            .iter()
            .filter(|s| s.category == category)
            .map(|s| s.dur_us)
            .sum()
    }

    /// Flush → decide on the submitter: the distributed consensus
    /// round-trip this PR wires into the perf gate.
    pub fn quorum_decide_us(&self) -> u64 {
        self.decide_us.saturating_sub(self.flush_us)
    }
}

/// Blame totals for one delivery-time window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowBlame {
    /// Window start (µs; multiple of the window size).
    pub start_us: u64,
    /// Paths whose delivery fell in this window.
    pub paths: u64,
    /// Per-category µs totals, [`BlameCategory::ALL`] order.
    pub totals: [u64; 5],
}

/// All causal paths of one run, with blame aggregations.
#[derive(Debug, Clone, Default)]
pub struct CausalProfile {
    /// One path per locally-submitted, delivered update, in delivery
    /// order.
    pub paths: Vec<CausalPath>,
}

/// Causal tag carried by a `msg_tag` record, joined to transmissions by
/// xid.
#[derive(Debug, Clone, Copy)]
struct TagInfo {
    kind: &'static str,
    origin: u32,
    cseq: u64,
    slot: u64,
    round: u64,
}

/// Per-run lookup tables built in one pass over the records.
#[derive(Default)]
struct Index {
    /// xid → causal tag (protocol messages only).
    tags: BTreeMap<u64, TagInfo>,
    /// xid → (send time, sender, destination).
    sends: BTreeMap<u64, (u64, u32, u32)>,
    /// (receiver, kind, slot) → tagged receives in trace order. Keyed
    /// so slot-bearing lookups are a `partition_point`, not a scan over
    /// the node's whole receive history.
    recvs_by_slot: BTreeMap<(u32, &'static str, u64), Vec<RecvEntry>>,
    /// (receiver, kind, origin) → tagged receives in trace order, for
    /// slot-less origin-filtered lookups (propose / fast_propose).
    recvs_by_origin: BTreeMap<(u32, &'static str, u32), Vec<RecvEntry>>,
    /// Logical-message group → earliest send time. Key: (sender, kind,
    /// dest, slot, round, cseq-for-slotless).
    groups: BTreeMap<(u32, &'static str, u32, u64, u64, u64), u64>,
    /// node → log-append times, in order.
    appends: BTreeMap<u32, Vec<u64>>,
    /// node → append-durable times, in order.
    durables: BTreeMap<u32, Vec<u64>>,
    /// node → (flush time, first_seq, updates), in order.
    flushes: BTreeMap<u32, Vec<(u64, u64, u64)>>,
    /// (node, slot) → first decide time.
    decides: BTreeMap<(u32, u64), u64>,
}

/// `(recv time, trace order, xid, sender)`. The trace-order counter
/// breaks same-microsecond ties the way the original receive log would.
type RecvEntry = (u64, u64, u64, u32);

impl Index {
    fn group_key(node: u32, tag: &TagInfo, dest: u32) -> (u32, &'static str, u32, u64, u64, u64) {
        // Slot-bearing messages group retransmissions by (slot, round);
        // slot-less ones get a fresh cseq per transmission, so each is
        // its own group (stall invisible — charged as sender CPU).
        let cseq = if tag.slot == TAG_NONE { tag.cseq } else { 0 };
        (node, tag.kind, dest, tag.slot, tag.round, cseq)
    }

    fn build(records: &[TraceRecord]) -> Index {
        let mut idx = Index::default();
        let mut ord: u64 = 0;
        for rec in records {
            match rec.event {
                TraceEvent::MsgSent { xid, to, .. } => {
                    idx.sends.insert(xid, (rec.t_us, rec.node, to));
                }
                TraceEvent::MsgRecv { xid, from, .. } => {
                    // The tag was traced at send time, so it precedes
                    // the receive in record order. Untagged receives
                    // (non-protocol traffic) never match a blame
                    // lookup, so they are not indexed.
                    if let Some(tag) = idx.tags.get(&xid) {
                        let entry = (rec.t_us, ord, xid, from);
                        ord += 1;
                        idx.recvs_by_slot
                            .entry((rec.node, tag.kind, tag.slot))
                            .or_default()
                            .push(entry);
                        idx.recvs_by_origin
                            .entry((rec.node, tag.kind, tag.origin))
                            .or_default()
                            .push(entry);
                    }
                }
                TraceEvent::MsgTag {
                    xid,
                    kind,
                    origin,
                    cseq,
                    slot,
                    round,
                } => {
                    let tag = TagInfo {
                        kind,
                        origin,
                        cseq,
                        slot,
                        round,
                    };
                    if let Some(&(t, node, dest)) = idx.sends.get(&xid) {
                        let key = Index::group_key(node, &tag, dest);
                        let e = idx.groups.entry(key).or_insert(t);
                        *e = (*e).min(t);
                    }
                    idx.tags.insert(xid, tag);
                }
                TraceEvent::LogAppend { .. } => {
                    idx.appends.entry(rec.node).or_default().push(rec.t_us);
                }
                TraceEvent::AppendDurable => {
                    idx.durables.entry(rec.node).or_default().push(rec.t_us);
                }
                TraceEvent::BatchFlushed {
                    updates, first_seq, ..
                } => {
                    idx.flushes
                        .entry(rec.node)
                        .or_default()
                        .push((rec.t_us, first_seq, updates));
                }
                TraceEvent::Decided { slot, .. } => {
                    idx.decides.entry((rec.node, slot)).or_insert(rec.t_us);
                }
                _ => {}
            }
        }
        idx
    }

    /// Latest entry with `t <= t_max` in one keyed receive vector.
    fn latest_entry<K: Ord>(
        map: &BTreeMap<K, Vec<RecvEntry>>,
        key: K,
        t_max: u64,
    ) -> Option<RecvEntry> {
        let v = map.get(&key)?;
        let i = v.partition_point(|r| r.0 <= t_max);
        if i == 0 {
            None
        } else {
            Some(v[i - 1])
        }
    }

    /// Latest receive at `node` of a `kind` message for `slot` with
    /// `t <= t_max`.
    fn latest_recv_slot(
        &self,
        node: u32,
        kind: &'static str,
        slot: u64,
        t_max: u64,
    ) -> Option<(u64, u64, u32)> {
        Index::latest_entry(&self.recvs_by_slot, (node, kind, slot), t_max)
            .map(|(t, _, xid, from)| (t, xid, from))
    }

    /// Latest receive at `node` of any of `kinds` originated by
    /// `origin` with `t <= t_max`; ties across kinds break on trace
    /// order, like the single receive log they were split from.
    fn latest_recv_origin(
        &self,
        node: u32,
        kinds: &[&'static str],
        origin: u32,
        t_max: u64,
    ) -> Option<(u64, u64, u32)> {
        kinds
            .iter()
            .filter_map(|k| Index::latest_entry(&self.recvs_by_origin, (node, *k, origin), t_max))
            .max_by_key(|&(t, ord, _, _)| (t, ord))
            .map(|(t, _, xid, from)| (t, xid, from))
    }

    /// Latest entry `<= t` in a sorted time vector.
    fn latest_at_or_before(v: Option<&Vec<u64>>, t: u64) -> Option<u64> {
        let v = v?;
        let i = v.partition_point(|&x| x <= t);
        if i == 0 {
            None
        } else {
            Some(v[i - 1])
        }
    }

    /// Earliest transmission of the logical message behind `xid` (the
    /// retransmit group); the actual send time if untagged/unknown.
    fn group_earliest(&self, xid: u64, actual: u64) -> u64 {
        let Some(&(_, node, dest)) = self.sends.get(&xid) else {
            return actual;
        };
        let Some(tag) = self.tags.get(&xid) else {
            return actual;
        };
        let key = Index::group_key(node, tag, dest);
        self.groups.get(&key).copied().unwrap_or(actual).min(actual)
    }

    /// The flush that carried `(node, seq)`, searching forward from
    /// `t_min`.
    fn flush_for(&self, node: u32, seq: u64, t_min: u64, t_max: u64) -> Option<u64> {
        let v = self.flushes.get(&node)?;
        let start = v.partition_point(|f| f.0 < t_min);
        for &(t, first_seq, updates) in v.get(start..)? {
            if t > t_max {
                break;
            }
            if first_seq <= seq && seq < first_seq.saturating_add(updates) {
                return Some(t);
            }
        }
        None
    }
}

/// One leg of the path: "the previous anchor up to `at` was `category`
/// on `node`".
struct Leg {
    at: Option<u64>,
    category: BlameCategory,
    node: u32,
    peer: Option<u32>,
}

fn leg(at: Option<u64>, category: BlameCategory, node: u32, peer: Option<u32>) -> Leg {
    Leg {
        at,
        category,
        node,
        peer,
    }
}

impl CausalProfile {
    /// Reconstructs every causal path from one run's records (engine
    /// order). Only locally-submitted updates carry a latency, so only
    /// those become paths.
    pub fn from_records(records: &[TraceRecord]) -> CausalProfile {
        let idx = Index::build(records);
        let mut paths = Vec::new();
        for rec in records {
            if let TraceEvent::UpdateDelivered {
                slot,
                submitter,
                seq,
                latency_us,
                ..
            } = rec.event
            {
                if latency_us == 0 || submitter != rec.node {
                    continue;
                }
                paths.push(build_path(&idx, rec.node, seq, slot, rec.t_us, latency_us));
            }
        }
        CausalProfile { paths }
    }

    /// Per-category blame totals across all paths,
    /// [`BlameCategory::ALL`] order.
    pub fn blame_by_category(&self) -> [u64; 5] {
        let mut totals = [0u64; 5];
        for p in &self.paths {
            for s in &p.segments {
                totals[s.category.index()] += s.dur_us;
            }
        }
        totals
    }

    /// Per-node blame totals (all categories), sorted by node id.
    pub fn blame_by_node(&self) -> Vec<(u32, u64)> {
        let mut map: BTreeMap<u32, u64> = BTreeMap::new();
        for p in &self.paths {
            for s in &p.segments {
                *map.entry(s.node).or_default() += s.dur_us;
            }
        }
        map.into_iter().collect()
    }

    /// Net-transit blame per directed link `(sender, receiver)`.
    pub fn blame_by_link(&self) -> Vec<((u32, u32), u64)> {
        let mut map: BTreeMap<(u32, u32), u64> = BTreeMap::new();
        for p in &self.paths {
            for s in &p.segments {
                if let (BlameCategory::NetTransit, Some(peer)) = (s.category, s.peer) {
                    *map.entry((s.node, peer)).or_default() += s.dur_us;
                }
            }
        }
        map.into_iter().collect()
    }

    /// Blame totals bucketed by delivery-time window.
    pub fn windows(&self, window_us: u64) -> Vec<WindowBlame> {
        let window_us = window_us.max(1);
        let mut map: BTreeMap<u64, ([u64; 5], u64)> = BTreeMap::new();
        for p in &self.paths {
            let start = (p.deliver_us / window_us) * window_us;
            let e = map.entry(start).or_default();
            e.1 += 1;
            for s in &p.segments {
                e.0[s.category.index()] += s.dur_us;
            }
        }
        map.into_iter()
            .map(|(start_us, (totals, paths))| WindowBlame {
                start_us,
                paths,
                totals,
            })
            .collect()
    }

    /// Mean flush → decide latency (µs) across paths; 0 when empty.
    pub fn quorum_decide_mean_us(&self) -> f64 {
        if self.paths.is_empty() {
            return 0.0;
        }
        let sum: u64 = self.paths.iter().map(|p| p.quorum_decide_us()).sum();
        sum as f64 / self.paths.len() as f64
    }

    /// Canonical per-path JSONL export (write-only analyst format).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for p in &self.paths {
            out.push_str(&format!(
                "{{\"node\":{},\"seq\":{},\"slot\":{},\"submit_us\":{},\"flush_us\":{},\"decide_us\":{},\"deliver_us\":{},\"total_us\":{},\"segments\":[",
                p.node, p.seq, p.slot, p.submit_us, p.flush_us, p.decide_us, p.deliver_us,
                p.total_us
            ));
            for (i, s) in p.segments.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"cat\":\"{}\",\"node\":{}",
                    s.category.name(),
                    s.node
                ));
                if let Some(peer) = s.peer {
                    out.push_str(&format!(",\"peer\":{peer}"));
                }
                out.push_str(&format!(
                    ",\"start_us\":{},\"dur_us\":{}}}",
                    s.start_us, s.dur_us
                ));
            }
            out.push_str("]}\n");
        }
        out
    }

    /// Aggregated blame CSV: `run,category,node,peer,count,total_us`,
    /// one row per (category, node, peer) with nonzero blame, in
    /// canonical order.
    pub fn blame_csv(&self, run: &str) -> String {
        let mut agg: BTreeMap<(usize, u32, i64), (u64, u64)> = BTreeMap::new();
        for p in &self.paths {
            for s in &p.segments {
                let peer = s.peer.map(|p| p as i64).unwrap_or(-1);
                let e = agg.entry((s.category.index(), s.node, peer)).or_default();
                e.0 += 1;
                e.1 += s.dur_us;
            }
        }
        let mut out = String::from("run,category,node,peer,count,total_us\n");
        for ((cat, node, peer), (count, total)) in agg {
            let peer = if peer < 0 {
                String::new()
            } else {
                peer.to_string()
            };
            out.push_str(&format!(
                "{run},{},{node},{peer},{count},{total}\n",
                BlameCategory::ALL[cat].name()
            ));
        }
        out
    }
}

/// Backward-chains one delivered update through the quorum and lays the
/// anchors out as monotonically clamped blame segments.
fn build_path(
    idx: &Index,
    node: u32,
    seq: u64,
    slot: u64,
    deliver_us: u64,
    latency_us: u64,
) -> CausalPath {
    use BlameCategory::*;
    let submit_us = deliver_us.saturating_sub(latency_us);
    let t1 = idx.flush_for(node, seq, submit_us, deliver_us);
    let t10 = idx
        .decides
        .get(&(node, slot))
        .copied()
        .filter(|&t| t <= deliver_us);

    let mut legs: Vec<Leg> = Vec::new();
    legs.push(leg(t1, Queueing, node, None)); // submit → flush: batch wait

    // Decide ← the accepted reply that completed the quorum.
    let quorum_by = t10.unwrap_or(deliver_us);
    let r_acc = idx.latest_recv_slot(node, "accepted", slot, quorum_by);
    if let Some((t9, acc_xid, acceptor)) = r_acc {
        // Accepted send on the acceptor (actual + retransmit-group
        // earliest), then its durability and append anchors.
        let t8p = idx.sends.get(&acc_xid).map(|s| s.0).unwrap_or(t9);
        let t8 = idx.group_earliest(acc_xid, t8p);
        let t7 = Index::latest_at_or_before(idx.durables.get(&acceptor), t8);
        let t6 = Index::latest_at_or_before(idx.appends.get(&acceptor), t7.unwrap_or(t8));

        // The proposal that triggered the append: a slot-matched accept
        // (classic), else the submitter's own fast/classic propose
        // (fast path or leader == submitter).
        let trig_by = t6.unwrap_or(t8);
        let r_trig = idx
            .latest_recv_slot(acceptor, "accept", slot, trig_by)
            .or_else(|| {
                idx.latest_recv_origin(acceptor, &["fast_propose", "any", "propose"], node, trig_by)
            });

        if let Some((t5, trig_xid, proposer)) = r_trig {
            let t4p = idx.sends.get(&trig_xid).map(|s| s.0).unwrap_or(t5);
            let t4 = idx.group_earliest(trig_xid, t4p);
            if proposer != node {
                // Classic path through a remote leader: find the
                // middleware propose that reached it.
                let r_prop = idx.latest_recv_origin(proposer, &["propose"], node, t4);
                if let Some((t3, prop_xid, _)) = r_prop {
                    let t2p = idx.sends.get(&prop_xid).map(|s| s.0).unwrap_or(t3);
                    let t2 = idx.group_earliest(prop_xid, t2p);
                    legs.push(leg(Some(t2), CpuService, node, None));
                    legs.push(leg(Some(t2p), RetransmitStall, node, None));
                    legs.push(leg(Some(t3), NetTransit, node, Some(proposer)));
                    legs.push(leg(Some(t4), CpuService, proposer, None));
                } else {
                    // No propose found (e.g. leader learned the value
                    // another way): charge the whole gap as transit to
                    // the leader — rare and clamped.
                    legs.push(leg(Some(t4), NetTransit, node, Some(proposer)));
                }
            } else {
                legs.push(leg(Some(t4), CpuService, node, None));
            }
            legs.push(leg(Some(t4p), RetransmitStall, proposer, None));
            legs.push(leg(Some(t5), NetTransit, proposer, Some(acceptor)));
        }

        legs.push(leg(t6, CpuService, acceptor, None)); // recv → append
        legs.push(leg(t7, DiskFsync, acceptor, None)); // append → durable
        legs.push(leg(Some(t8), CpuService, acceptor, None)); // durable → send
        legs.push(leg(Some(t8p), RetransmitStall, acceptor, None));
        legs.push(leg(Some(t9), NetTransit, acceptor, Some(node)));
    }

    legs.push(leg(t10, CpuService, node, None)); // accepted → decide
    legs.push(leg(Some(deliver_us), Queueing, node, None)); // decide → apply

    // Monotone clamp: every anchor is pulled into [cur, deliver], so
    // the segment durations telescope to the latency by construction.
    let mut segments = Vec::new();
    let mut cur = submit_us;
    let mut flush_c = submit_us;
    let mut decide_c = deliver_us;
    for (i, l) in legs.iter().enumerate() {
        let Some(at) = l.at else { continue };
        let at = at.clamp(cur, deliver_us);
        if i == 0 {
            flush_c = at;
        }
        if i == legs.len() - 2 {
            decide_c = at;
        }
        if at > cur {
            segments.push(BlameSegment {
                category: l.category,
                node: l.node,
                peer: l.peer,
                start_us: cur,
                dur_us: at - cur,
            });
        }
        cur = at;
    }
    // The final leg always has an anchor (deliver_us), so cur == deliver.
    CausalPath {
        node,
        seq,
        slot,
        submit_us,
        flush_us: flush_c,
        decide_us: decide_c,
        deliver_us,
        total_us: latency_us,
        segments,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t_us: u64, node: u32, event: TraceEvent) -> TraceRecord {
        TraceRecord { t_us, node, event }
    }

    fn sent(t: u64, node: u32, xid: u64, to: u32) -> TraceRecord {
        rec(
            t,
            node,
            TraceEvent::MsgSent {
                xid,
                to,
                bytes: 100,
            },
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn tag(
        t: u64,
        node: u32,
        xid: u64,
        kind: &'static str,
        origin: u32,
        cseq: u64,
        slot: u64,
        round: u64,
    ) -> TraceRecord {
        rec(
            t,
            node,
            TraceEvent::MsgTag {
                xid,
                kind,
                origin,
                cseq,
                slot,
                round,
            },
        )
    }

    fn recv(t: u64, node: u32, xid: u64, from: u32) -> TraceRecord {
        rec(
            t,
            node,
            TraceEvent::MsgRecv {
                xid,
                from,
                bytes: 100,
            },
        )
    }

    fn delivered(t: u64, node: u32, slot: u64, seq: u64, latency_us: u64) -> TraceRecord {
        rec(
            t,
            node,
            TraceEvent::UpdateDelivered {
                slot,
                index: 0,
                submitter: node,
                seq,
                latency_us,
            },
        )
    }

    /// submit(100) → flush(150) → propose 0→1 (160..200) → accept
    /// 1→2 (220..260) → append(270) → durable(320) → accepted 2→0
    /// (320..360) → decide(365) → deliver(400).
    fn classic_trace() -> Vec<TraceRecord> {
        vec![
            rec(100, 0, TraceEvent::UpdateSubmitted { seq: 0 }),
            rec(
                150,
                0,
                TraceEvent::BatchFlushed {
                    updates: 1,
                    trigger: "single",
                    first_seq: 0,
                },
            ),
            sent(160, 0, 1, 1),
            tag(160, 0, 1, "propose", 0, 0, TAG_NONE, TAG_NONE),
            recv(200, 1, 1, 0),
            sent(220, 1, 2, 2),
            tag(220, 1, 2, "accept", 1, 1, 5, 1),
            recv(260, 2, 2, 1),
            rec(270, 2, TraceEvent::LogAppend { bytes: 100 }),
            rec(320, 2, TraceEvent::AppendDurable),
            sent(320, 2, 3, 0),
            tag(320, 2, 3, "accepted", 2, 2, 5, 1),
            recv(360, 0, 3, 2),
            rec(
                365,
                0,
                TraceEvent::Decided {
                    slot: 5,
                    noop: false,
                },
            ),
            delivered(400, 0, 5, 0, 300),
        ]
    }

    #[test]
    fn classic_path_segments_are_exact() {
        use BlameCategory::*;
        let profile = CausalProfile::from_records(&classic_trace());
        assert_eq!(profile.paths.len(), 1);
        let p = &profile.paths[0];
        assert!(p.telescopes(), "segments: {:?}", p.segments);
        assert_eq!(p.total_us, 300);
        assert_eq!(p.submit_us, 100);
        assert_eq!(p.flush_us, 150);
        assert_eq!(p.decide_us, 365);
        assert_eq!(p.quorum_decide_us(), 215);
        let want = [
            (Queueing, 0, None, 100, 50),      // submit → flush
            (CpuService, 0, None, 150, 10),    // flush → propose send
            (NetTransit, 0, Some(1), 160, 40), // 0 → 1
            (CpuService, 1, None, 200, 20),    // propose → accept send
            (NetTransit, 1, Some(2), 220, 40), // 1 → 2
            (CpuService, 2, None, 260, 10),    // recv → append
            (DiskFsync, 2, None, 270, 50),     // append → durable
            (NetTransit, 2, Some(0), 320, 40), // 2 → 0
            (CpuService, 0, None, 360, 5),     // accepted → decide
            (Queueing, 0, None, 365, 35),      // decide → apply
        ];
        assert_eq!(p.segments.len(), want.len(), "{:?}", p.segments);
        for (s, (cat, node, peer, start, dur)) in p.segments.iter().zip(want) {
            assert_eq!((s.category, s.node, s.peer), (cat, node, peer));
            assert_eq!((s.start_us, s.dur_us), (start, dur), "{s:?}");
        }
        assert_eq!(profile.blame_by_category()[DiskFsync.index()], 50);
        assert_eq!(
            profile.blame_by_link(),
            vec![((0, 1), 40), ((1, 2), 40), ((2, 0), 40)]
        );
    }

    #[test]
    fn lost_then_retransmitted_accept_shows_a_stall() {
        use BlameCategory::*;
        // The first accept (xid 2) is lost; the leader retransmits the
        // same (slot, round) as xid 4 at 500, which gets through.
        let trace = vec![
            rec(100, 0, TraceEvent::UpdateSubmitted { seq: 0 }),
            rec(
                150,
                0,
                TraceEvent::BatchFlushed {
                    updates: 1,
                    trigger: "single",
                    first_seq: 0,
                },
            ),
            sent(160, 0, 1, 1),
            tag(160, 0, 1, "propose", 0, 0, TAG_NONE, TAG_NONE),
            recv(200, 1, 1, 0),
            sent(220, 1, 2, 2),
            tag(220, 1, 2, "accept", 1, 1, 5, 1),
            rec(
                220,
                1,
                TraceEvent::MsgDropped {
                    xid: 2,
                    to: 2,
                    bytes: 100,
                    reason: "loss",
                },
            ),
            sent(500, 1, 4, 2),
            tag(500, 1, 4, "accept", 1, 2, 5, 1),
            recv(540, 2, 4, 1),
            rec(550, 2, TraceEvent::LogAppend { bytes: 100 }),
            rec(600, 2, TraceEvent::AppendDurable),
            sent(600, 2, 5, 0),
            tag(600, 2, 5, "accepted", 2, 3, 5, 1),
            recv(640, 0, 5, 2),
            rec(
                645,
                0,
                TraceEvent::Decided {
                    slot: 5,
                    noop: false,
                },
            ),
            delivered(680, 0, 5, 0, 580),
        ];
        let profile = CausalProfile::from_records(&trace);
        assert_eq!(profile.paths.len(), 1);
        let p = &profile.paths[0];
        assert!(p.telescopes());
        // The stall is the gap between the lost send (220) and the
        // retransmission that landed (500), charged to the leader.
        let stall: Vec<_> = p
            .segments
            .iter()
            .filter(|s| s.category == RetransmitStall)
            .collect();
        assert_eq!(stall.len(), 1, "{:?}", p.segments);
        assert_eq!((stall[0].node, stall[0].dur_us), (1, 280));
        assert_eq!(p.blame(RetransmitStall), 280);
    }

    #[test]
    fn crash_mid_quorum_still_telescopes() {
        // Acceptor 2 takes the accept but crashes before replying; the
        // quorum completes through acceptor 3. The path must follow the
        // reply that actually arrived and still telescope.
        let trace = vec![
            rec(100, 0, TraceEvent::UpdateSubmitted { seq: 0 }),
            rec(
                150,
                0,
                TraceEvent::BatchFlushed {
                    updates: 1,
                    trigger: "single",
                    first_seq: 0,
                },
            ),
            sent(160, 0, 1, 1),
            tag(160, 0, 1, "propose", 0, 0, TAG_NONE, TAG_NONE),
            recv(200, 1, 1, 0),
            // Accepts to both acceptors.
            sent(220, 1, 2, 2),
            tag(220, 1, 2, "accept", 1, 1, 5, 1),
            sent(220, 1, 3, 3),
            tag(220, 1, 3, "accept", 1, 2, 5, 1),
            recv(260, 2, 2, 1),
            rec(262, 2, TraceEvent::Crash),
            recv(270, 3, 3, 1),
            rec(280, 3, TraceEvent::LogAppend { bytes: 100 }),
            rec(340, 3, TraceEvent::AppendDurable),
            sent(340, 3, 4, 0),
            tag(340, 3, 4, "accepted", 3, 3, 5, 1),
            recv(390, 0, 4, 3),
            rec(
                395,
                0,
                TraceEvent::Decided {
                    slot: 5,
                    noop: false,
                },
            ),
            delivered(430, 0, 5, 0, 330),
        ];
        let profile = CausalProfile::from_records(&trace);
        assert_eq!(profile.paths.len(), 1);
        let p = &profile.paths[0];
        assert!(p.telescopes());
        assert_eq!(p.blame(BlameCategory::DiskFsync), 60);
        // The surviving acceptor carries the reply link.
        assert!(p
            .segments
            .iter()
            .any(|s| s.category == BlameCategory::NetTransit && s.node == 3 && s.peer == Some(0)));
    }

    #[test]
    fn batch_spanning_two_slots_yields_two_exact_paths() {
        // Two updates flushed together but decided in two slots (the
        // middleware split the batch): each gets its own path against
        // the same flush record, and both telescope.
        let mut trace = vec![
            rec(100, 0, TraceEvent::UpdateSubmitted { seq: 0 }),
            rec(110, 0, TraceEvent::UpdateSubmitted { seq: 1 }),
            rec(
                150,
                0,
                TraceEvent::BatchFlushed {
                    updates: 2,
                    trigger: "size",
                    first_seq: 0,
                },
            ),
        ];
        // Slot 5 carries seq 0, slot 6 carries seq 1; fast path
        // (submitter sends fast_propose straight to the acceptor).
        for (i, slot) in [(0u64, 5u64), (1, 6)] {
            let base = 160 + i * 300;
            let xid = 10 + i * 2;
            trace.extend(vec![
                sent(base, 0, xid, 2),
                tag(base, 0, xid, "fast_propose", 0, i, TAG_NONE, TAG_NONE),
                recv(base + 40, 2, xid, 0),
                rec(base + 50, 2, TraceEvent::LogAppend { bytes: 100 }),
                rec(base + 90, 2, TraceEvent::AppendDurable),
                sent(base + 90, 2, xid + 1, 0),
                tag(base + 90, 2, xid + 1, "accepted", 2, i, slot, 0),
                recv(base + 130, 0, xid + 1, 2),
                rec(base + 135, 0, TraceEvent::Decided { slot, noop: false }),
            ]);
            trace.push(delivered(
                base + 160,
                0,
                slot,
                i,
                base + 160 - (100 + i * 10),
            ));
        }
        let profile = CausalProfile::from_records(&trace);
        assert_eq!(profile.paths.len(), 2);
        for p in &profile.paths {
            assert!(p.telescopes(), "path {p:?}");
            assert_eq!(p.flush_us, 150, "both share the flush");
            assert_eq!(p.blame(BlameCategory::DiskFsync), 40);
            // Fast path: no leader hop, both net links touch node 0.
            assert!(p
                .segments
                .iter()
                .all(|s| s.category != BlameCategory::NetTransit
                    || s.node == 0
                    || s.peer == Some(0)));
        }
        assert_eq!(profile.paths[0].slot, 5);
        assert_eq!(profile.paths[1].slot, 6);
    }

    #[test]
    fn missing_anchors_collapse_but_never_break_telescoping() {
        // A delivery with no protocol records at all: the whole latency
        // lands in queueing, and the invariant still holds.
        let trace = vec![delivered(400, 0, 5, 0, 300)];
        let profile = CausalProfile::from_records(&trace);
        assert_eq!(profile.paths.len(), 1);
        let p = &profile.paths[0];
        assert!(p.telescopes());
        assert_eq!(p.segments.len(), 1);
        assert_eq!(p.segments[0].category, BlameCategory::Queueing);
        assert_eq!(p.segments[0].dur_us, 300);
    }

    #[test]
    fn exports_are_deterministic_and_aggregate_correctly() {
        let profile = CausalProfile::from_records(&classic_trace());
        assert_eq!(profile.to_jsonl(), profile.to_jsonl());
        let csv = profile.blame_csv("run-a");
        assert_eq!(csv, profile.blame_csv("run-a"));
        assert!(csv.starts_with("run,category,node,peer,count,total_us\n"));
        assert!(csv.contains("run-a,disk_fsync,2,,1,50\n"), "{csv}");
        assert!(csv.contains("run-a,net_transit,1,2,1,40\n"), "{csv}");
        let windows = profile.windows(1_000);
        assert_eq!(windows.len(), 1);
        assert_eq!(windows[0].paths, 1);
        assert_eq!(windows[0].totals.iter().sum::<u64>(), 300);
        assert!((profile.quorum_decide_mean_us() - 215.0).abs() < 1e-9);
    }
}
