//! The engine's event queue: a calendar-queue / hierarchical-timer-wheel
//! hybrid.
//!
//! The original engine kept every pending event in one global
//! `BinaryHeap`, paying `O(log n)` comparisons — and the cache misses of
//! sifting through megabytes of entries — on every push and pop once
//! sweeps queue hundreds of thousands of timers. [`EventWheel`] replaces
//! it with the classic calendar-queue layout:
//!
//! * **current** — the drained current bucket, sorted descending by
//!   `(at, seq)` and popped from the back, so the hot pop is a branch
//!   and a `Vec::pop`. Sorting one bucket with pdqsort amortizes far
//!   cheaper per entry than sifting a binary heap. A small **late**
//!   heap absorbs pushes that land inside the current window after the
//!   bucket was drained (network-delay-scale offsets); the pop takes
//!   the minimum of the two heads.
//! * **wheel** — `NUM_BUCKETS` unsorted `Vec` buckets, each spanning
//!   [`BUCKET_WIDTH_US`] microseconds of simulated time. A push inside
//!   the wheel horizon is an `O(1)` append; ordering is deferred until
//!   the cursor reaches the bucket and sorts it into `current`.
//! * **overflow** — entries beyond the wheel horizon (~2 s out: crash
//!   restart timers, schedule milestones), kept in a min-heap and pulled
//!   into the wheel as the horizon advances past them.
//!
//! **Exact ordering.** Every entry carries the engine's global `(at,
//! seq)` key, `seq` strictly increasing across pushes, and pops are
//! globally ordered by that key — bit-for-bit the order the old
//! `BinaryHeap` produced, including FIFO tie-breaking. The differential
//! proptest in `tests/queue_proptest.rs` pins this against
//! [`HeapQueue`], the retained reference implementation.
//!
//! The module is exposed (`#[doc(hidden)]`) so the differential tests
//! and the criterion dispatch benches can drive both queues directly;
//! it is not part of the crate's supported API.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Microseconds covered by one wheel bucket (power of two so the
/// bucket index is a shift, not a division).
const BUCKET_WIDTH_US: u64 = 1 << 10; // 1.024 ms
/// Number of wheel buckets (power of two). Horizon ≈ 2.1 s of simulated
/// time: network delays (~100 µs), disk writes (~ms) and think-time
/// timers (~1 s) all land on the wheel; only rare far-future entries
/// (crash restarts, schedule milestones) overflow.
const NUM_BUCKETS: usize = 1 << 11;
const BUCKET_MASK: usize = NUM_BUCKETS - 1;

/// One queued entry: the global ordering key plus the caller's payload.
#[derive(Debug)]
struct Item<T> {
    at: u64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Item<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Item<T> {}
impl<T> PartialOrd for Item<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Item<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Calendar-queue / timer-wheel hybrid with exact `(at, seq)` pop order.
///
/// `at` is absolute simulated microseconds; `seq` must be unique and
/// strictly increasing across pushes (the engine's global sequence
/// number), which makes the order total and FIFO on time ties.
#[derive(Debug)]
pub struct EventWheel<T> {
    /// The drained current bucket, sorted descending by `(at, seq)` so
    /// the minimum pops from the back in O(1).
    current: Vec<Item<T>>,
    /// Entries with `at < cursor_time + BUCKET_WIDTH_US` that arrived
    /// after the current bucket was drained (or behind a cursor that
    /// peeked ahead of the caller's clock), min-heap by `(at, seq)`.
    late: BinaryHeap<Reverse<Item<T>>>,
    /// `buckets[(at / width) % n]` holds entries in the wheel horizon,
    /// unsorted. The cursor's own bucket is always empty: its window
    /// routes to `current`/`late`.
    buckets: Vec<Vec<Item<T>>>,
    /// Index of the current bucket (`cursor_time / width % n`).
    cursor: usize,
    /// Start of the current bucket window; multiple of the width and
    /// monotonically non-decreasing.
    cursor_time: u64,
    /// Entries held across all wheel buckets.
    wheel_len: usize,
    /// Entries at or past the wheel horizon, min-heap by `(at, seq)` so
    /// redistribution pops exactly the entries that fit the new horizon
    /// instead of scanning everything parked here.
    overflow: BinaryHeap<Reverse<Item<T>>>,
    len: usize,
}

impl<T> Default for EventWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventWheel<T> {
    /// An empty wheel anchored at time zero.
    pub fn new() -> Self {
        EventWheel {
            current: Vec::new(),
            late: BinaryHeap::new(),
            buckets: (0..NUM_BUCKETS).map(|_| Vec::new()).collect(),
            cursor: 0,
            cursor_time: 0,
            wheel_len: 0,
            overflow: BinaryHeap::new(),
            len: 0,
        }
    }

    /// Minimum `at` parked beyond the horizon (`u64::MAX` when none).
    fn overflow_min(&self) -> u64 {
        self.overflow
            .peek()
            .map_or(u64::MAX, |Reverse(entry)| entry.at)
    }

    /// Number of queued entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entries are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queues `item` at `(at, seq)`.
    pub fn push(&mut self, at: u64, seq: u64, item: T) {
        self.len += 1;
        let entry = Item { at, seq, item };
        if at < self.cursor_time + BUCKET_WIDTH_US {
            self.late.push(Reverse(entry));
        } else if at < self.horizon() {
            let idx = ((at / BUCKET_WIDTH_US) as usize) & BUCKET_MASK;
            self.wheel_len += 1;
            if let Some(bucket) = self.buckets.get_mut(idx) {
                bucket.push(entry);
            }
        } else {
            self.overflow.push(Reverse(entry));
        }
    }

    /// Pops the minimum `(at, seq)` entry if its time is `<= limit`;
    /// returns `None` (without popping) when the queue is empty or the
    /// earliest entry lies past the limit.
    pub fn pop_before(&mut self, limit: u64) -> Option<(u64, u64, T)> {
        loop {
            // Entries parked in overflow go stale once the cursor (and
            // with it the horizon) advances past them: from then on a
            // fresh push can land in a *bucket* at a later time than a
            // stale overflow entry. Fold overflow back into the wheel
            // before deciding any pop, so the near < wheel < overflow
            // time ordering is restored and pops stay globally minimal.
            if self.overflow_min() < self.horizon() {
                self.redistribute_overflow();
            }
            // The in-window minimum is the smaller of the sorted
            // current bucket's back and the late heap's head; `seq` is
            // globally unique, so the `(at, seq)` comparison is total.
            let take_current = match (self.current.last(), self.late.peek()) {
                (Some(cur), late) => {
                    late.is_none_or(|Reverse(l)| (cur.at, cur.seq) < (l.at, l.seq))
                }
                (None, Some(_)) => false,
                (None, None) => {
                    if self.wheel_len == 0 {
                        let min = self.overflow_min();
                        if self.overflow.is_empty() || min > limit {
                            return None;
                        }
                        self.rebase_to_overflow(min);
                    } else {
                        self.advance_to_next_bucket();
                    }
                    continue;
                }
            };
            let entry = if take_current {
                if self.current.last().expect("peeked entry").at > limit {
                    return None;
                }
                self.current.pop().expect("peeked entry")
            } else {
                if self.late.peek().expect("peeked entry").0.at > limit {
                    return None;
                }
                let Reverse(entry) = self.late.pop().expect("peeked entry");
                entry
            };
            self.len -= 1;
            return Some((entry.at, entry.seq, entry.item));
        }
    }

    /// Steps the cursor forward to the next non-empty bucket and makes
    /// it the sorted `current` window. Caller guarantees the current
    /// window is drained and `wheel_len > 0`, which bounds the walk to
    /// one revolution.
    fn advance_to_next_bucket(&mut self) {
        loop {
            self.cursor_time += BUCKET_WIDTH_US;
            self.cursor = (self.cursor + 1) & BUCKET_MASK;
            if !self.buckets[self.cursor].is_empty() {
                break;
            }
        }
        debug_assert!(self.current.is_empty(), "advance over undrained window");
        // Swap hands the drained window's capacity to the emptied
        // bucket, so neither side reallocates on refill.
        std::mem::swap(&mut self.current, &mut self.buckets[self.cursor]);
        self.wheel_len -= self.current.len();
        // Descending, so the minimum pops from the back in O(1).
        self.current.sort_unstable_by(|a, b| b.cmp(a));
    }

    /// Re-anchors an empty wheel at the earliest overflow entry (`min`,
    /// already peeked by the caller) and pulls the overflow prefix that
    /// fits the new horizon. At least the minimum entry always lands in
    /// the new window, so callers make progress.
    fn rebase_to_overflow(&mut self, min: u64) {
        debug_assert_eq!(self.wheel_len, 0, "rebase with populated wheel");
        debug_assert!(self.current.is_empty(), "rebase with populated window");
        debug_assert!(self.late.is_empty(), "rebase with populated late heap");
        self.cursor_time = min - min % BUCKET_WIDTH_US;
        self.cursor = ((self.cursor_time / BUCKET_WIDTH_US) as usize) & BUCKET_MASK;
        self.redistribute_overflow();
    }

    /// Moves every overflow entry that now fits inside the horizon into
    /// the current window (via `late` — `current` must stay sorted) or
    /// its wheel bucket. The overflow is a min-heap, so this pops
    /// exactly the entries that move and touches nothing else.
    fn redistribute_overflow(&mut self) {
        let horizon = self.horizon();
        while let Some(Reverse(head)) = self.overflow.peek() {
            if head.at >= horizon {
                break;
            }
            let Reverse(entry) = self.overflow.pop().expect("peeked entry");
            if entry.at < self.cursor_time + BUCKET_WIDTH_US {
                self.late.push(Reverse(entry));
            } else {
                let idx = ((entry.at / BUCKET_WIDTH_US) as usize) & BUCKET_MASK;
                self.wheel_len += 1;
                self.buckets[idx].push(entry);
            }
        }
    }

    fn horizon(&self) -> u64 {
        self.cursor_time + (NUM_BUCKETS as u64) * BUCKET_WIDTH_US
    }

    /// Keeps only entries whose payload satisfies `keep`. Used by the
    /// engine's crash-time purge of dead-incarnation work.
    pub fn retain(&mut self, mut keep: impl FnMut(&T) -> bool) {
        self.current.retain(|entry| keep(&entry.item));
        let late = std::mem::take(&mut self.late);
        self.late = late
            .into_iter()
            .filter(|Reverse(entry)| keep(&entry.item))
            .collect();
        for bucket in &mut self.buckets {
            let before = bucket.len();
            bucket.retain(|entry| keep(&entry.item));
            self.wheel_len -= before - bucket.len();
        }
        let overflow = std::mem::take(&mut self.overflow);
        self.overflow = overflow
            .into_iter()
            .filter(|Reverse(entry)| keep(&entry.item))
            .collect();
        self.len = self.current.len() + self.late.len() + self.wheel_len + self.overflow.len();
    }

    /// Visits every queued entry as `(at, seq, &payload)`, in no
    /// particular order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64, &T)> {
        self.current
            .iter()
            .chain(self.late.iter().map(|Reverse(entry)| entry))
            .chain(self.buckets.iter().flatten())
            .chain(self.overflow.iter().map(|Reverse(entry)| entry))
            .map(|entry| (entry.at, entry.seq, &entry.item))
    }
}

/// The retained reference implementation: the engine's original global
/// `BinaryHeap`, with the same API as [`EventWheel`]. It exists so the
/// differential proptest and the dispatch benches can compare the wheel
/// against the exact semantics (and speed) the engine shipped with.
#[derive(Debug, Default)]
pub struct HeapQueue<T> {
    heap: BinaryHeap<Reverse<Item<T>>>,
}

impl<T> HeapQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
        }
    }

    /// Number of queued entries.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no entries are queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Queues `item` at `(at, seq)`.
    pub fn push(&mut self, at: u64, seq: u64, item: T) {
        self.heap.push(Reverse(Item { at, seq, item }));
    }

    /// Pops the minimum `(at, seq)` entry if its time is `<= limit`.
    pub fn pop_before(&mut self, limit: u64) -> Option<(u64, u64, T)> {
        match self.heap.peek() {
            Some(Reverse(entry)) if entry.at <= limit => {
                let Reverse(entry) = self.heap.pop().expect("peeked entry");
                Some((entry.at, entry.seq, entry.item))
            }
            _ => None,
        }
    }

    /// Keeps only entries whose payload satisfies `keep`.
    pub fn retain(&mut self, mut keep: impl FnMut(&T) -> bool) {
        let heap = std::mem::take(&mut self.heap);
        self.heap = heap
            .into_iter()
            .filter(|Reverse(entry)| keep(&entry.item))
            .collect();
    }

    /// Visits every queued entry as `(at, seq, &payload)`.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64, &T)> {
        self.heap
            .iter()
            .map(|Reverse(entry)| (entry.at, entry.seq, &entry.item))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(wheel: &mut EventWheel<u32>) -> Vec<(u64, u64, u32)> {
        let mut out = Vec::new();
        while let Some(popped) = wheel.pop_before(u64::MAX) {
            out.push(popped);
        }
        out
    }

    #[test]
    fn pops_in_time_order_with_fifo_ties() {
        let mut w = EventWheel::new();
        w.push(50, 0, 1u32);
        w.push(10, 1, 2);
        w.push(10, 2, 3);
        w.push(9_999_999, 3, 4); // overflow
        w.push(10, 4, 5);
        let popped: Vec<u32> = drain(&mut w).into_iter().map(|(_, _, x)| x).collect();
        assert_eq!(popped, vec![2, 3, 5, 1, 4]);
    }

    #[test]
    fn respects_limit_without_popping() {
        let mut w = EventWheel::new();
        w.push(100, 0, 1u32);
        assert_eq!(w.pop_before(99), None);
        assert_eq!(w.len(), 1);
        assert_eq!(w.pop_before(100), Some((100, 0, 1)));
        assert!(w.is_empty());
    }

    #[test]
    fn late_push_behind_advanced_cursor_still_pops_first() {
        let mut w = EventWheel::new();
        // Force the cursor deep into the future, then push behind it —
        // the pattern a driver produces when its clock trails a peeked
        // limit.
        w.push(5_000_000, 0, 1u32);
        assert_eq!(w.pop_before(4_999_999), None);
        w.push(100, 1, 2);
        assert_eq!(w.pop_before(u64::MAX), Some((100, 1, 2)));
        assert_eq!(w.pop_before(u64::MAX), Some((5_000_000, 0, 1)));
    }

    #[test]
    fn overflow_rebase_preserves_order() {
        let mut w = EventWheel::new();
        // All far past the initial horizon, spread over many rebases.
        for i in 0..100u64 {
            w.push(10_000_000 + i * 3_000_000, i, i as u32);
        }
        let popped: Vec<u64> = drain(&mut w).into_iter().map(|(at, _, _)| at).collect();
        let mut sorted = popped.clone();
        sorted.sort_unstable();
        assert_eq!(popped, sorted);
        assert_eq!(popped.len(), 100);
    }

    #[test]
    fn retain_updates_len_and_overflow_min() {
        let mut w = EventWheel::new();
        w.push(10, 0, 1u32);
        w.push(2_000, 1, 2);
        w.push(50_000_000, 2, 3);
        w.push(60_000_000, 3, 4);
        w.retain(|&x| x % 2 == 0);
        assert_eq!(w.len(), 2);
        let popped: Vec<u32> = drain(&mut w).into_iter().map(|(_, _, x)| x).collect();
        assert_eq!(popped, vec![2, 4]);
    }

    #[test]
    fn iter_visits_every_region() {
        let mut w = EventWheel::new();
        w.push(10, 0, 1u32); // near
        w.push(5_000, 1, 2); // wheel
        w.push(50_000_000, 2, 3); // overflow
        let mut seen: Vec<u32> = w.iter().map(|(_, _, &x)| x).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![1, 2, 3]);
    }

    // Regression: an entry parked in overflow goes stale once the
    // cursor advances far enough that the horizon passes it. It must
    // still pop in global order — before any later bucket entry — and
    // must pop at all even when steady wheel traffic (periodic timers)
    // keeps the wheel from ever running dry.
    #[test]
    fn stale_overflow_entry_pops_in_global_order() {
        let mut w = EventWheel::new();
        w.push(3_000_000, 0, 1u32); // beyond the initial ~2.1 s horizon
        w.push(1_000_000, 1, 2); // wheel bucket
        assert_eq!(w.pop_before(1_000_000), Some((1_000_000, 1, 2)));
        // Cursor now sits near 1 s; horizon ≈ 3.1 s has passed the
        // overflow entry. A fresh push lands in a bucket *after* it.
        w.push(3_500_000, 2, 3);
        assert_eq!(w.pop_before(u64::MAX), Some((3_000_000, 0, 1)));
        assert_eq!(w.pop_before(u64::MAX), Some((3_500_000, 2, 3)));
        assert!(w.is_empty());
    }

    #[test]
    fn overflow_delivered_despite_continuous_wheel_traffic() {
        // A periodic 1 ms tick that re-arms forever, plus one far-out
        // entry: the far entry must come out at its time, not never.
        let mut w = EventWheel::new();
        let far = 5_000_000u64;
        w.push(far, 0, 0u32);
        let mut seq = 1u64;
        let mut tick = 1_000u64;
        w.push(tick, seq, 1);
        let mut saw_far = false;
        for _ in 0..10_000 {
            let (at, _, v) = w.pop_before(u64::MAX).expect("queue never empties");
            if v == 0 {
                assert_eq!(at, far);
                saw_far = true;
                break;
            }
            assert_eq!(at, tick);
            tick += 1_000;
            seq += 1;
            w.push(tick, seq, 1);
        }
        assert!(saw_far, "overflow entry starved by wheel traffic");
    }

    #[test]
    fn heap_queue_matches_on_a_mixed_sequence() {
        let mut wheel = EventWheel::new();
        let mut heap = HeapQueue::new();
        let mut state = 42u64;
        let mut at = 0u64;
        for seq in 0..10_000u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let delta = (state >> 33) % 3_000_000;
            at += delta % 7; // mostly ties and small steps
            let t = at + delta;
            wheel.push(t, seq, seq as u32);
            heap.push(t, seq, seq as u32);
        }
        loop {
            let a = wheel.pop_before(u64::MAX);
            let b = heap.pop_before(u64::MAX);
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
