//! Network model: latency, jitter, bandwidth, loss, and partitions.
//!
//! The paper's testbed is an 18-node cluster on a single 1 Gbps Ethernet
//! switch. We model each point-to-point message with
//!
//! ```text
//! delay = base_latency + jitter + size / bandwidth
//! ```
//!
//! plus optional probabilistic loss and explicit partitions (used by the
//! fault-injection tests; the paper's faultloads crash whole processes
//! rather than links, but partitions are needed to exercise Paxos'
//! liveness behaviour below quorum).

use std::collections::{BTreeMap, BTreeSet};

use rand::Rng;

use crate::node::NodeId;
use crate::time::SimDuration;

/// Configuration of the simulated network.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// One-way base latency between any two distinct nodes.
    pub base_latency: SimDuration,
    /// Maximum additional uniformly-distributed jitter per message.
    pub jitter: SimDuration,
    /// Link bandwidth in bytes per second (1 Gbps Ethernet by default).
    pub bandwidth_bytes_per_sec: u64,
    /// Probability in `[0, 1]` that a message is silently dropped.
    pub drop_probability: f64,
    /// Latency for a node sending a message to itself (loopback).
    pub loopback_latency: SimDuration,
}

impl Default for NetConfig {
    fn default() -> Self {
        // Defaults approximate the paper's switched 1 Gbps LAN.
        NetConfig {
            base_latency: SimDuration::from_micros(120),
            jitter: SimDuration::from_micros(40),
            bandwidth_bytes_per_sec: 125_000_000,
            drop_probability: 0.0,
            loopback_latency: SimDuration::from_micros(10),
        }
    }
}

/// Outcome of submitting one message to the network model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transmission {
    /// Deliver after the given one-way delay.
    Deliver(SimDuration),
    /// Deliver twice: the original copy after the first delay and a
    /// duplicate after the second (a retransmitting switch).
    DeliverDup(SimDuration, SimDuration),
    /// The message is lost, for the given reason.
    Dropped(DropReason),
}

/// Why the network model lost a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// The link is severed by an explicit partition.
    Partition,
    /// Probabilistic loss (link fault or configured drop probability).
    Loss,
    /// The destination process was down when the message arrived. Unlike
    /// the other reasons this is decided at delivery time by the engine,
    /// not at transmit time by the network model.
    DestDown,
}

impl DropReason {
    /// Stable tag used in trace records.
    pub fn tag(self) -> &'static str {
        match self {
            DropReason::Partition => "partition",
            DropReason::Loss => "loss",
            DropReason::DestDown => "dest_down",
        }
    }
}

/// Adversarial per-link fault behaviour, applied on top of the base
/// [`NetConfig`] for the links it is installed on.
///
/// All probabilities are independent per message; draws come from the
/// engine's seeded RNG, so faulty runs stay deterministic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFault {
    /// Probability in `[0, 1]` that a message is silently lost.
    pub loss: f64,
    /// Probability in `[0, 1]` that a message is delivered twice.
    pub duplicate: f64,
    /// Probability in `[0, 1]` that a message is held back by up to
    /// `reorder_delay`, letting later messages overtake it.
    pub reorder: f64,
    /// Maximum extra delay applied to a reordered message.
    pub reorder_delay: SimDuration,
}

impl Default for LinkFault {
    fn default() -> Self {
        LinkFault {
            loss: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            reorder_delay: SimDuration::from_millis(5),
        }
    }
}

/// The simulated switch: computes delivery delays and tracks partitions.
#[derive(Debug, Clone)]
pub struct Network {
    config: NetConfig,
    /// Unordered pairs `(min, max)` of nodes that cannot communicate.
    cut_links: BTreeSet<(NodeId, NodeId)>,
    /// Unordered pairs with an adversarial fault profile installed.
    link_faults: BTreeMap<(NodeId, NodeId), LinkFault>,
    sent: u64,
    dropped: u64,
    duplicated: u64,
    reordered: u64,
    bytes: u64,
}

impl Network {
    /// Creates a network with the given configuration.
    pub fn new(config: NetConfig) -> Self {
        Network {
            config,
            cut_links: BTreeSet::new(),
            link_faults: BTreeMap::new(),
            sent: 0,
            dropped: 0,
            duplicated: 0,
            reordered: 0,
            bytes: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &NetConfig {
        &self.config
    }

    fn key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Severs the link between `a` and `b` in both directions.
    pub fn cut(&mut self, a: NodeId, b: NodeId) {
        self.cut_links.insert(Self::key(a, b));
    }

    /// Restores the link between `a` and `b`.
    pub fn heal(&mut self, a: NodeId, b: NodeId) {
        self.cut_links.remove(&Self::key(a, b));
    }

    /// Severs every link between the two groups, partitioning them.
    pub fn partition(&mut self, group_a: &[NodeId], group_b: &[NodeId]) {
        for &a in group_a {
            for &b in group_b {
                self.cut(a, b);
            }
        }
    }

    /// Heals all cut links.
    pub fn heal_all(&mut self) {
        self.cut_links.clear();
    }

    /// Whether `a` and `b` can currently exchange messages.
    pub fn connected(&self, a: NodeId, b: NodeId) -> bool {
        !self.cut_links.contains(&Self::key(a, b))
    }

    /// Installs (or replaces) an adversarial fault profile on the link
    /// between `a` and `b`, both directions. Loopback (`a == b`) is
    /// in-process and never faulted; such calls are ignored.
    pub fn set_link_fault(&mut self, a: NodeId, b: NodeId, fault: LinkFault) {
        if a != b {
            self.link_faults.insert(Self::key(a, b), fault);
        }
    }

    /// Removes the fault profile from the link between `a` and `b`.
    pub fn clear_link_fault(&mut self, a: NodeId, b: NodeId) {
        self.link_faults.remove(&Self::key(a, b));
    }

    /// Removes every installed fault profile.
    pub fn clear_link_faults(&mut self) {
        self.link_faults.clear();
    }

    /// The fault profile installed on the `a`–`b` link, if any.
    pub fn link_fault(&self, a: NodeId, b: NodeId) -> Option<&LinkFault> {
        self.link_faults.get(&Self::key(a, b))
    }

    /// Computes the fate of a `size_bytes` message from `from` to `to`.
    ///
    /// Draws jitter (and the drop decision, if configured) from `rng`, so
    /// outcomes are deterministic for a fixed seed.
    pub fn transmit<R: Rng>(
        &mut self,
        rng: &mut R,
        from: NodeId,
        to: NodeId,
        size_bytes: u64,
    ) -> Transmission {
        self.sent += 1;
        if from != to && !self.connected(from, to) {
            self.dropped += 1;
            return Transmission::Dropped(DropReason::Partition);
        }
        let fault = if from == to {
            None
        } else {
            self.link_faults.get(&Self::key(from, to)).copied()
        };
        if let Some(f) = fault {
            if f.loss > 0.0 && rng.gen::<f64>() < f.loss {
                self.dropped += 1;
                return Transmission::Dropped(DropReason::Loss);
            }
        }
        if self.config.drop_probability > 0.0 && from != to {
            let p: f64 = rng.gen();
            if p < self.config.drop_probability {
                self.dropped += 1;
                return Transmission::Dropped(DropReason::Loss);
            }
        }
        self.bytes += size_bytes;
        if from == to {
            return Transmission::Deliver(self.config.loopback_latency);
        }
        let serialization =
            size_bytes.saturating_mul(1_000_000) / self.config.bandwidth_bytes_per_sec.max(1);
        let mut delay = self.config.base_latency
            + SimDuration::from_micros(self.draw_jitter(rng))
            + SimDuration::from_micros(serialization);
        if let Some(f) = fault {
            if f.reorder > 0.0 && rng.gen::<f64>() < f.reorder {
                self.reordered += 1;
                let held_us = f.reorder_delay.as_micros();
                if held_us > 0 {
                    delay += SimDuration::from_micros(rng.gen_range(0..=held_us));
                }
            }
            if f.duplicate > 0.0 && rng.gen::<f64>() < f.duplicate {
                self.duplicated += 1;
                // The duplicate takes an independent trip through the
                // switch: fresh jitter on top of the same fixed costs.
                let dup = self.config.base_latency
                    + SimDuration::from_micros(self.draw_jitter(rng))
                    + SimDuration::from_micros(serialization);
                return Transmission::DeliverDup(delay, dup);
            }
        }
        Transmission::Deliver(delay)
    }

    fn draw_jitter<R: Rng>(&self, rng: &mut R) -> u64 {
        if self.config.jitter.is_zero() {
            0
        } else {
            rng.gen_range(0..=self.config.jitter.as_micros())
        }
    }

    /// Records a delivery-time drop decided by the engine (destination
    /// down when the message arrived), so `messages_dropped` covers
    /// every lost message regardless of where the loss was decided.
    pub(crate) fn note_dropped(&mut self) {
        self.dropped += 1;
    }

    /// Number of messages submitted so far.
    pub fn messages_sent(&self) -> u64 {
        self.sent
    }

    /// Number of messages lost to drops or partitions.
    pub fn messages_dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of messages duplicated by link faults.
    pub fn messages_duplicated(&self) -> u64 {
        self.duplicated
    }

    /// Number of messages held back (reordered) by link faults.
    pub fn messages_reordered(&self) -> u64 {
        self.reordered
    }

    /// Total payload bytes carried (excluding dropped messages).
    pub fn bytes_carried(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn delivery_includes_base_latency_and_serialization() {
        let mut net = Network::new(NetConfig {
            jitter: SimDuration::ZERO,
            ..NetConfig::default()
        });
        let mut r = rng();
        match net.transmit(&mut r, NodeId(0), NodeId(1), 125_000_000) {
            Transmission::Deliver(d) => {
                // 1 second of serialization at 1 Gbps plus 120us base.
                assert_eq!(d.as_micros(), 1_000_000 + 120);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn loopback_is_fast_and_never_partitioned() {
        let mut net = Network::new(NetConfig::default());
        net.cut(NodeId(0), NodeId(0));
        let mut r = rng();
        match net.transmit(&mut r, NodeId(0), NodeId(0), 100) {
            Transmission::Deliver(d) => assert_eq!(d, SimDuration::from_micros(10)),
            other => panic!("loopback must not drop: {other:?}"),
        }
    }

    #[test]
    fn partition_drops_both_directions() {
        let mut net = Network::new(NetConfig::default());
        net.cut(NodeId(0), NodeId(1));
        let mut r = rng();
        assert_eq!(
            net.transmit(&mut r, NodeId(0), NodeId(1), 1),
            Transmission::Dropped(DropReason::Partition)
        );
        assert_eq!(
            net.transmit(&mut r, NodeId(1), NodeId(0), 1),
            Transmission::Dropped(DropReason::Partition)
        );
        net.heal(NodeId(1), NodeId(0));
        assert!(matches!(
            net.transmit(&mut r, NodeId(0), NodeId(1), 1),
            Transmission::Deliver(_)
        ));
    }

    #[test]
    fn group_partition_and_heal_all() {
        let mut net = Network::new(NetConfig::default());
        net.partition(&[NodeId(0), NodeId(1)], &[NodeId(2)]);
        assert!(!net.connected(NodeId(0), NodeId(2)));
        assert!(!net.connected(NodeId(1), NodeId(2)));
        assert!(net.connected(NodeId(0), NodeId(1)));
        net.heal_all();
        assert!(net.connected(NodeId(0), NodeId(2)));
    }

    #[test]
    fn drop_probability_one_drops_everything() {
        let mut net = Network::new(NetConfig {
            drop_probability: 1.0,
            ..NetConfig::default()
        });
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(
                net.transmit(&mut r, NodeId(0), NodeId(1), 1),
                Transmission::Dropped(DropReason::Loss)
            );
        }
        assert_eq!(net.messages_dropped(), 10);
    }

    #[test]
    fn counters_track_sent_and_bytes() {
        let mut net = Network::new(NetConfig::default());
        let mut r = rng();
        net.transmit(&mut r, NodeId(0), NodeId(1), 100);
        net.transmit(&mut r, NodeId(1), NodeId(2), 200);
        assert_eq!(net.messages_sent(), 2);
        assert_eq!(net.bytes_carried(), 300);
    }

    #[test]
    fn link_fault_loss_one_drops_everything() {
        let mut net = Network::new(NetConfig::default());
        net.set_link_fault(
            NodeId(0),
            NodeId(1),
            LinkFault {
                loss: 1.0,
                ..LinkFault::default()
            },
        );
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(
                net.transmit(&mut r, NodeId(0), NodeId(1), 1),
                Transmission::Dropped(DropReason::Loss)
            );
        }
        // The fault is per-link: an unfaulted pair still delivers.
        assert!(matches!(
            net.transmit(&mut r, NodeId(0), NodeId(2), 1),
            Transmission::Deliver(_)
        ));
        net.clear_link_fault(NodeId(1), NodeId(0));
        assert!(matches!(
            net.transmit(&mut r, NodeId(0), NodeId(1), 1),
            Transmission::Deliver(_)
        ));
    }

    #[test]
    fn link_fault_duplicate_one_duplicates_everything() {
        let mut net = Network::new(NetConfig::default());
        net.set_link_fault(
            NodeId(0),
            NodeId(1),
            LinkFault {
                duplicate: 1.0,
                ..LinkFault::default()
            },
        );
        let mut r = rng();
        for _ in 0..10 {
            assert!(matches!(
                net.transmit(&mut r, NodeId(0), NodeId(1), 1),
                Transmission::DeliverDup(_, _)
            ));
        }
        assert_eq!(net.messages_duplicated(), 10);
    }

    #[test]
    fn link_fault_reorder_extends_delay() {
        let cfg = NetConfig {
            jitter: SimDuration::ZERO,
            ..NetConfig::default()
        };
        let mut net = Network::new(cfg.clone());
        let hold = SimDuration::from_millis(50);
        net.set_link_fault(
            NodeId(0),
            NodeId(1),
            LinkFault {
                reorder: 1.0,
                reorder_delay: hold,
                ..LinkFault::default()
            },
        );
        let mut r = rng();
        let mut max_seen = SimDuration::ZERO;
        for _ in 0..50 {
            match net.transmit(&mut r, NodeId(0), NodeId(1), 0) {
                Transmission::Deliver(d) => {
                    assert!(d >= cfg.base_latency);
                    assert!(d <= cfg.base_latency + hold);
                    max_seen = max_seen.max(d);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(
            max_seen > cfg.base_latency + SimDuration::from_millis(10),
            "holding should sometimes exceed normal delivery: {max_seen}"
        );
        assert_eq!(net.messages_reordered(), 50);
    }

    #[test]
    fn loopback_is_never_link_faulted() {
        let mut net = Network::new(NetConfig::default());
        net.set_link_fault(
            NodeId(0),
            NodeId(0),
            LinkFault {
                loss: 1.0,
                ..LinkFault::default()
            },
        );
        let mut r = rng();
        assert!(matches!(
            net.transmit(&mut r, NodeId(0), NodeId(0), 1),
            Transmission::Deliver(_)
        ));
    }

    #[test]
    fn jitter_bounded_by_config() {
        let cfg = NetConfig::default();
        let mut net = Network::new(cfg.clone());
        let mut r = rng();
        for _ in 0..100 {
            if let Transmission::Deliver(d) = net.transmit(&mut r, NodeId(0), NodeId(1), 0) {
                assert!(d >= cfg.base_latency);
                assert!(d <= cfg.base_latency + cfg.jitter);
            }
        }
    }
}
