//! Network model: latency, jitter, bandwidth, loss, and partitions.
//!
//! The paper's testbed is an 18-node cluster on a single 1 Gbps Ethernet
//! switch. We model each point-to-point message with
//!
//! ```text
//! delay = base_latency + jitter + size / bandwidth
//! ```
//!
//! plus optional probabilistic loss and explicit partitions (used by the
//! fault-injection tests; the paper's faultloads crash whole processes
//! rather than links, but partitions are needed to exercise Paxos'
//! liveness behaviour below quorum).

use std::collections::HashSet;

use rand::Rng;

use crate::node::NodeId;
use crate::time::SimDuration;

/// Configuration of the simulated network.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// One-way base latency between any two distinct nodes.
    pub base_latency: SimDuration,
    /// Maximum additional uniformly-distributed jitter per message.
    pub jitter: SimDuration,
    /// Link bandwidth in bytes per second (1 Gbps Ethernet by default).
    pub bandwidth_bytes_per_sec: u64,
    /// Probability in `[0, 1]` that a message is silently dropped.
    pub drop_probability: f64,
    /// Latency for a node sending a message to itself (loopback).
    pub loopback_latency: SimDuration,
}

impl Default for NetConfig {
    fn default() -> Self {
        // Defaults approximate the paper's switched 1 Gbps LAN.
        NetConfig {
            base_latency: SimDuration::from_micros(120),
            jitter: SimDuration::from_micros(40),
            bandwidth_bytes_per_sec: 125_000_000,
            drop_probability: 0.0,
            loopback_latency: SimDuration::from_micros(10),
        }
    }
}

/// Outcome of submitting one message to the network model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transmission {
    /// Deliver after the given one-way delay.
    Deliver(SimDuration),
    /// The message is lost (drop or partition).
    Dropped,
}

/// The simulated switch: computes delivery delays and tracks partitions.
#[derive(Debug, Clone)]
pub struct Network {
    config: NetConfig,
    /// Unordered pairs `(min, max)` of nodes that cannot communicate.
    cut_links: HashSet<(NodeId, NodeId)>,
    sent: u64,
    dropped: u64,
    bytes: u64,
}

impl Network {
    /// Creates a network with the given configuration.
    pub fn new(config: NetConfig) -> Self {
        Network {
            config,
            cut_links: HashSet::new(),
            sent: 0,
            dropped: 0,
            bytes: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &NetConfig {
        &self.config
    }

    fn key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Severs the link between `a` and `b` in both directions.
    pub fn cut(&mut self, a: NodeId, b: NodeId) {
        self.cut_links.insert(Self::key(a, b));
    }

    /// Restores the link between `a` and `b`.
    pub fn heal(&mut self, a: NodeId, b: NodeId) {
        self.cut_links.remove(&Self::key(a, b));
    }

    /// Severs every link between the two groups, partitioning them.
    pub fn partition(&mut self, group_a: &[NodeId], group_b: &[NodeId]) {
        for &a in group_a {
            for &b in group_b {
                self.cut(a, b);
            }
        }
    }

    /// Heals all cut links.
    pub fn heal_all(&mut self) {
        self.cut_links.clear();
    }

    /// Whether `a` and `b` can currently exchange messages.
    pub fn connected(&self, a: NodeId, b: NodeId) -> bool {
        !self.cut_links.contains(&Self::key(a, b))
    }

    /// Computes the fate of a `size_bytes` message from `from` to `to`.
    ///
    /// Draws jitter (and the drop decision, if configured) from `rng`, so
    /// outcomes are deterministic for a fixed seed.
    pub fn transmit<R: Rng>(
        &mut self,
        rng: &mut R,
        from: NodeId,
        to: NodeId,
        size_bytes: u64,
    ) -> Transmission {
        self.sent += 1;
        if from != to && !self.connected(from, to) {
            self.dropped += 1;
            return Transmission::Dropped;
        }
        if self.config.drop_probability > 0.0 && from != to {
            let p: f64 = rng.gen();
            if p < self.config.drop_probability {
                self.dropped += 1;
                return Transmission::Dropped;
            }
        }
        self.bytes += size_bytes;
        if from == to {
            return Transmission::Deliver(self.config.loopback_latency);
        }
        let jitter_us = if self.config.jitter.is_zero() {
            0
        } else {
            rng.gen_range(0..=self.config.jitter.as_micros())
        };
        let serialization =
            size_bytes.saturating_mul(1_000_000) / self.config.bandwidth_bytes_per_sec.max(1);
        let delay = self.config.base_latency
            + SimDuration::from_micros(jitter_us)
            + SimDuration::from_micros(serialization);
        Transmission::Deliver(delay)
    }

    /// Number of messages submitted so far.
    pub fn messages_sent(&self) -> u64 {
        self.sent
    }

    /// Number of messages lost to drops or partitions.
    pub fn messages_dropped(&self) -> u64 {
        self.dropped
    }

    /// Total payload bytes carried (excluding dropped messages).
    pub fn bytes_carried(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn delivery_includes_base_latency_and_serialization() {
        let mut net = Network::new(NetConfig {
            jitter: SimDuration::ZERO,
            ..NetConfig::default()
        });
        let mut r = rng();
        match net.transmit(&mut r, NodeId(0), NodeId(1), 125_000_000) {
            Transmission::Deliver(d) => {
                // 1 second of serialization at 1 Gbps plus 120us base.
                assert_eq!(d.as_micros(), 1_000_000 + 120);
            }
            Transmission::Dropped => panic!("unexpected drop"),
        }
    }

    #[test]
    fn loopback_is_fast_and_never_partitioned() {
        let mut net = Network::new(NetConfig::default());
        net.cut(NodeId(0), NodeId(0));
        let mut r = rng();
        match net.transmit(&mut r, NodeId(0), NodeId(0), 100) {
            Transmission::Deliver(d) => assert_eq!(d, SimDuration::from_micros(10)),
            Transmission::Dropped => panic!("loopback must not drop"),
        }
    }

    #[test]
    fn partition_drops_both_directions() {
        let mut net = Network::new(NetConfig::default());
        net.cut(NodeId(0), NodeId(1));
        let mut r = rng();
        assert_eq!(
            net.transmit(&mut r, NodeId(0), NodeId(1), 1),
            Transmission::Dropped
        );
        assert_eq!(
            net.transmit(&mut r, NodeId(1), NodeId(0), 1),
            Transmission::Dropped
        );
        net.heal(NodeId(1), NodeId(0));
        assert!(matches!(
            net.transmit(&mut r, NodeId(0), NodeId(1), 1),
            Transmission::Deliver(_)
        ));
    }

    #[test]
    fn group_partition_and_heal_all() {
        let mut net = Network::new(NetConfig::default());
        net.partition(&[NodeId(0), NodeId(1)], &[NodeId(2)]);
        assert!(!net.connected(NodeId(0), NodeId(2)));
        assert!(!net.connected(NodeId(1), NodeId(2)));
        assert!(net.connected(NodeId(0), NodeId(1)));
        net.heal_all();
        assert!(net.connected(NodeId(0), NodeId(2)));
    }

    #[test]
    fn drop_probability_one_drops_everything() {
        let mut net = Network::new(NetConfig {
            drop_probability: 1.0,
            ..NetConfig::default()
        });
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(
                net.transmit(&mut r, NodeId(0), NodeId(1), 1),
                Transmission::Dropped
            );
        }
        assert_eq!(net.messages_dropped(), 10);
    }

    #[test]
    fn counters_track_sent_and_bytes() {
        let mut net = Network::new(NetConfig::default());
        let mut r = rng();
        net.transmit(&mut r, NodeId(0), NodeId(1), 100);
        net.transmit(&mut r, NodeId(1), NodeId(2), 200);
        assert_eq!(net.messages_sent(), 2);
        assert_eq!(net.bytes_carried(), 300);
    }

    #[test]
    fn jitter_bounded_by_config() {
        let cfg = NetConfig::default();
        let mut net = Network::new(cfg.clone());
        let mut r = rng();
        for _ in 0..100 {
            if let Transmission::Deliver(d) = net.transmit(&mut r, NodeId(0), NodeId(1), 0) {
                assert!(d >= cfg.base_latency);
                assert!(d <= cfg.base_latency + cfg.jitter);
            }
        }
    }
}
