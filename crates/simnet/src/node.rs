//! Node identity and lifecycle bookkeeping.

use std::fmt;

/// Identifies a node (a simulated machine/process slot) in the simulation.
///
/// Node ids are dense indices assigned at engine construction; the
/// topology is fixed for the lifetime of a run, matching the paper's
/// static cluster of machines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The dense index of this node.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(value: usize) -> Self {
        NodeId(value)
    }
}

/// A node's incarnation number: bumped on every restart.
///
/// Timers and disk operations scheduled by incarnation *k* are discarded
/// if they come due while incarnation *k+1* (or later) is running, so a
/// restarted process never observes callbacks belonging to its previous
/// life.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Incarnation(pub u64);

impl Incarnation {
    /// The next incarnation.
    pub fn next(self) -> Incarnation {
        Incarnation(self.0 + 1)
    }
}

/// Liveness of a node slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeStatus {
    /// The process is running.
    Up,
    /// The process has crashed and has not been restarted yet.
    Down,
}

/// Per-node lifecycle record kept by the engine.
#[derive(Debug, Clone)]
pub struct NodeState {
    /// Current liveness.
    pub status: NodeStatus,
    /// Current incarnation (bumped on restart).
    pub incarnation: Incarnation,
    /// Total number of crashes injected into this node so far.
    pub crashes: u64,
}

impl Default for NodeState {
    fn default() -> Self {
        NodeState {
            status: NodeStatus::Up,
            incarnation: Incarnation(0),
            crashes: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_display_and_index() {
        let n = NodeId(7);
        assert_eq!(n.to_string(), "n7");
        assert_eq!(n.index(), 7);
        assert_eq!(NodeId::from(3), NodeId(3));
    }

    #[test]
    fn incarnation_monotonic() {
        let i = Incarnation::default();
        assert!(i.next() > i);
        assert_eq!(i.next().next(), Incarnation(2));
    }

    #[test]
    fn default_node_state_is_up() {
        let s = NodeState::default();
        assert_eq!(s.status, NodeStatus::Up);
        assert_eq!(s.crashes, 0);
    }
}
