//! Per-node stable storage with a latency model.
//!
//! The paper's nodes have a single 7200 rpm disk and Treplica is
//! "configured to write only to the local disk": acceptor promises and
//! accepted values are forced to stable storage before they take effect,
//! and checkpoints are written to / loaded from disk during recovery.
//!
//! Two pieces live here:
//!
//! * [`DiskModel`] — translates an operation into a completion latency.
//!   Sequential log appends are cheap (the head stays on the log track and
//!   the drive's write cache absorbs them, as on the paper's testbed);
//!   bulk reads/writes pay seek + transfer time.
//! * [`StableStore`] — the durable contents of one node's disk: a
//!   key/value area (checkpoints, metadata) and named append-only logs
//!   (the consensus log). It survives crashes; only the *process* state is
//!   volatile.
//!
//! Durability semantics: an operation becomes durable at its *completion*
//! time. If the process crashes while an operation is in flight, the
//! operation is lost — the engine discards the completion event and never
//! applies the mutation. This is the conservative reading of an
//! `fsync`-gated write.

use std::collections::BTreeMap;

use crate::time::SimDuration;

/// Latency model of one disk.
#[derive(Debug, Clone)]
pub struct DiskConfig {
    /// Average seek + rotational latency for a random access.
    pub seek: SimDuration,
    /// Sustained write bandwidth, bytes per second.
    pub write_bandwidth_bytes_per_sec: u64,
    /// Effective bulk-read (restore) bandwidth, bytes per second. This
    /// is deliberately below the raw disk rate: reloading a checkpoint
    /// includes deserialization and object-graph reconstruction, and the
    /// paper's measured recovery times (Figure 6: ≈40–140 s for
    /// 300–700 MB states) imply an effective ≈8 MB/s restore path.
    pub read_bandwidth_bytes_per_sec: u64,
    /// Base latency of a flushed sequential log append (write-cache hit).
    pub append_base: SimDuration,
}

impl Default for DiskConfig {
    fn default() -> Self {
        // A 7200 rpm SATA disk of the 2008 era: ~8 ms random access,
        // ~60 MB/s sustained writes, ~1 ms for a flushed sequential
        // append; reads at the restore-path effective rate.
        DiskConfig {
            seek: SimDuration::from_millis(8),
            write_bandwidth_bytes_per_sec: 60_000_000,
            read_bandwidth_bytes_per_sec: 8_000_000,
            append_base: SimDuration::from_millis(1),
        }
    }
}

/// A durable mutation applied to a [`StableStore`] when its disk
/// operation completes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StableOp {
    /// Durably set `key` to `value`.
    Put {
        /// Key in the node's key/value area.
        key: String,
        /// Value bytes.
        value: Vec<u8>,
    },
    /// Durably append `entry` to the named log.
    Append {
        /// Log name.
        log: String,
        /// Entry bytes.
        entry: Vec<u8>,
    },
    /// Durably drop all entries of `log` with index `< keep_from`.
    ///
    /// Indexes are *stable*: entry `i` keeps index `i` after truncation
    /// (the log remembers how many entries were dropped).
    TruncateLog {
        /// Log name.
        log: String,
        /// First index to keep.
        keep_from: u64,
    },
    /// Durably remove `key` from the key/value area (e.g. an obsolete
    /// checkpoint generation).
    Delete {
        /// Key to remove.
        key: String,
    },
}

impl StableOp {
    /// Payload size used by the latency model.
    pub fn size_bytes(&self) -> u64 {
        match self {
            StableOp::Put { value, .. } => value.len() as u64,
            StableOp::Append { entry, .. } => entry.len() as u64,
            StableOp::TruncateLog { .. } | StableOp::Delete { .. } => 0,
        }
    }
}

/// The latency model of a node's disk.
#[derive(Debug, Clone, Default)]
pub struct DiskModel {
    config: DiskConfig,
    reads: u64,
    writes: u64,
    log_appends: u64,
    bytes_written: u64,
    bytes_appended: u64,
    bytes_read: u64,
}

impl DiskModel {
    /// Creates a disk with the given latency parameters.
    pub fn new(config: DiskConfig) -> Self {
        DiskModel {
            config,
            ..DiskModel::default()
        }
    }

    fn write_transfer(&self, bytes: u64) -> SimDuration {
        SimDuration::from_micros(
            bytes.saturating_mul(1_000_000) / self.config.write_bandwidth_bytes_per_sec.max(1),
        )
    }

    fn read_transfer(&self, bytes: u64) -> SimDuration {
        SimDuration::from_micros(
            bytes.saturating_mul(1_000_000) / self.config.read_bandwidth_bytes_per_sec.max(1),
        )
    }

    /// Latency until `op` is durable.
    pub fn write_latency(&mut self, op: &StableOp) -> SimDuration {
        self.writes += 1;
        self.bytes_written += op.size_bytes();
        match op {
            StableOp::Append { entry, .. } => {
                self.log_appends += 1;
                self.bytes_appended += entry.len() as u64;
                self.config.append_base + self.write_transfer(entry.len() as u64)
            }
            StableOp::Put { value, .. } => {
                self.config.seek + self.write_transfer(value.len() as u64)
            }
            StableOp::TruncateLog { .. } | StableOp::Delete { .. } => self.config.append_base,
        }
    }

    /// Latency to read `bytes` from the disk (one seek plus transfer at
    /// the restore-path rate).
    pub fn read_latency(&mut self, bytes: u64) -> SimDuration {
        self.reads += 1;
        self.bytes_read += bytes;
        self.config.seek + self.read_transfer(bytes)
    }

    /// Number of write operations issued.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Number of sequential log appends among the writes (the group
    /// commit's unit of interest: one per consensus decree per acceptor).
    pub fn log_appends(&self) -> u64 {
        self.log_appends
    }

    /// Number of read operations issued.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Total bytes written.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Bytes written through sequential log appends alone — the
    /// numerator of the group-commit coalescing ratio (appended bytes
    /// per consensus decree).
    pub fn bytes_appended(&self) -> u64 {
        self.bytes_appended
    }

    /// Total bytes read.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }
}

/// A log with stable indexes across truncation.
#[derive(Debug, Clone, Default)]
pub struct StableLog {
    first_index: u64,
    entries: Vec<Vec<u8>>,
}

impl StableLog {
    /// Index of the first retained entry.
    pub fn first_index(&self) -> u64 {
        self.first_index
    }

    /// Index one past the last entry ever appended.
    pub fn next_index(&self) -> u64 {
        self.first_index + self.entries.len() as u64
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries are retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry at stable index `index`, if retained.
    pub fn get(&self, index: u64) -> Option<&[u8]> {
        if index < self.first_index {
            return None;
        }
        self.entries
            .get((index - self.first_index) as usize)
            .map(Vec::as_slice)
    }

    /// Iterates over `(index, entry)` pairs of retained entries.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &[u8])> {
        self.entries
            .iter()
            .enumerate()
            .map(move |(i, e)| (self.first_index + i as u64, e.as_slice()))
    }

    fn append(&mut self, entry: Vec<u8>) -> u64 {
        self.entries.push(entry);
        self.next_index() - 1
    }

    fn truncate_front(&mut self, keep_from: u64) {
        if keep_from <= self.first_index {
            return;
        }
        let drop = ((keep_from - self.first_index) as usize).min(self.entries.len());
        self.entries.drain(..drop);
        self.first_index += drop as u64;
    }

    /// Total retained bytes.
    pub fn bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.len() as u64).sum()
    }
}

/// The durable contents of one node's disk.
#[derive(Debug, Clone, Default)]
pub struct StableStore {
    kv: BTreeMap<String, Vec<u8>>,
    logs: BTreeMap<String, StableLog>,
    /// Modeled ("nominal") sizes for keys whose in-simulation byte count
    /// understates the size being modeled (e.g. a checkpoint standing in
    /// for a 700 MB application state).
    nominal: BTreeMap<String, u64>,
}

impl StableStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        StableStore::default()
    }

    /// Applies a durable mutation (called by the engine at completion time).
    pub fn apply(&mut self, op: StableOp) {
        match op {
            StableOp::Put { key, value } => {
                self.kv.insert(key, value);
            }
            StableOp::Append { log, entry } => {
                self.logs.entry(log).or_default().append(entry);
            }
            StableOp::TruncateLog { log, keep_from } => {
                self.logs.entry(log).or_default().truncate_front(keep_from);
            }
            StableOp::Delete { key } => {
                self.kv.remove(&key);
                self.nominal.remove(&key);
            }
        }
    }

    /// Reads a key from the key/value area.
    pub fn get(&self, key: &str) -> Option<&[u8]> {
        self.kv.get(key).map(Vec::as_slice)
    }

    /// Sets the modeled size of `key` (used by read-latency computation
    /// in place of the stored length).
    pub fn set_nominal(&mut self, key: &str, bytes: u64) {
        self.nominal.insert(key.to_string(), bytes);
    }

    /// The modeled size of `key`: its nominal override if set, else the
    /// stored length, else 0.
    pub fn nominal_size(&self, key: &str) -> u64 {
        self.nominal
            .get(key)
            .copied()
            .unwrap_or_else(|| self.kv.get(key).map(|v| v.len() as u64).unwrap_or(0))
    }

    /// The named log, if any entry was ever appended or truncated.
    pub fn log(&self, name: &str) -> Option<&StableLog> {
        self.logs.get(name)
    }

    /// Total durable bytes on this disk (key/value area plus logs).
    pub fn bytes(&self) -> u64 {
        let kv: u64 = self.kv.values().map(|v| v.len() as u64).sum();
        let logs: u64 = self.logs.values().map(StableLog::bytes).sum();
        kv + logs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_latency_is_cheaper_than_put() {
        let mut disk = DiskModel::new(DiskConfig::default());
        let append = disk.write_latency(&StableOp::Append {
            log: "l".into(),
            entry: vec![0; 1024],
        });
        let put = disk.write_latency(&StableOp::Put {
            key: "k".into(),
            value: vec![0; 1024],
        });
        assert!(append < put, "append {append} should be < put {put}");
    }

    #[test]
    fn read_latency_scales_with_bytes() {
        let mut disk = DiskModel::new(DiskConfig::default());
        let small = disk.read_latency(1_000);
        let big = disk.read_latency(80_000_000);
        assert!(big > small);
        // 80 MB at the 8 MB/s restore rate = 10 s plus one seek.
        assert_eq!(big.as_micros(), 10_000_000 + 8_000);
    }

    #[test]
    fn store_put_get_roundtrip() {
        let mut s = StableStore::new();
        s.apply(StableOp::Put {
            key: "ckpt".into(),
            value: b"abc".to_vec(),
        });
        assert_eq!(s.get("ckpt"), Some(&b"abc"[..]));
        assert_eq!(s.get("missing"), None);
    }

    #[test]
    fn log_indexes_stable_across_truncation() {
        let mut s = StableStore::new();
        for i in 0..5u8 {
            s.apply(StableOp::Append {
                log: "paxos".into(),
                entry: vec![i],
            });
        }
        s.apply(StableOp::TruncateLog {
            log: "paxos".into(),
            keep_from: 3,
        });
        let log = s.log("paxos").unwrap();
        assert_eq!(log.first_index(), 3);
        assert_eq!(log.next_index(), 5);
        assert_eq!(log.get(2), None);
        assert_eq!(log.get(3), Some(&[3u8][..]));
        assert_eq!(log.get(4), Some(&[4u8][..]));
        let collected: Vec<u64> = log.iter().map(|(i, _)| i).collect();
        assert_eq!(collected, vec![3, 4]);
    }

    #[test]
    fn truncate_past_end_drops_everything_but_keeps_counter() {
        let mut s = StableStore::new();
        s.apply(StableOp::Append {
            log: "l".into(),
            entry: vec![1],
        });
        s.apply(StableOp::TruncateLog {
            log: "l".into(),
            keep_from: 10,
        });
        let log = s.log("l").unwrap();
        assert!(log.is_empty());
        assert_eq!(log.first_index(), 1);
        // Appending resumes at the next free index.
        s.apply(StableOp::Append {
            log: "l".into(),
            entry: vec![2],
        });
        assert_eq!(s.log("l").unwrap().get(1), Some(&[2u8][..]));
    }

    #[test]
    fn truncate_noop_when_behind_first_index() {
        let mut s = StableStore::new();
        for i in 0..3u8 {
            s.apply(StableOp::Append {
                log: "l".into(),
                entry: vec![i],
            });
        }
        s.apply(StableOp::TruncateLog {
            log: "l".into(),
            keep_from: 2,
        });
        s.apply(StableOp::TruncateLog {
            log: "l".into(),
            keep_from: 1,
        });
        assert_eq!(s.log("l").unwrap().first_index(), 2);
    }

    #[test]
    fn store_accounts_bytes() {
        let mut s = StableStore::new();
        s.apply(StableOp::Put {
            key: "k".into(),
            value: vec![0; 10],
        });
        s.apply(StableOp::Append {
            log: "l".into(),
            entry: vec![0; 5],
        });
        assert_eq!(s.bytes(), 15);
    }

    #[test]
    fn disk_counters() {
        let mut disk = DiskModel::new(DiskConfig::default());
        disk.write_latency(&StableOp::Append {
            log: "l".into(),
            entry: vec![0; 100],
        });
        disk.read_latency(50);
        assert_eq!(disk.writes(), 1);
        assert_eq!(disk.log_appends(), 1);
        assert_eq!(disk.reads(), 1);
        assert_eq!(disk.bytes_written(), 100);
        assert_eq!(disk.bytes_appended(), 100);
        assert_eq!(disk.bytes_read(), 50);
    }
}
