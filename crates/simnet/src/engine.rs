//! The discrete-event engine.
//!
//! [`Engine`] owns the event queue, the network and disk models, node
//! lifecycle state, and the run's seeded random number generator. It does
//! *not* own the protocol actors: a driver (see the `cluster` crate) pops
//! events with [`Engine::next_event_before`] and dispatches them to its
//! own actor structures, passing the engine back in so handlers can send
//! messages, set timers, and issue disk operations.
//!
//! Determinism: all randomness flows through one `StdRng` seeded at
//! construction, and ties in the event queue are broken by a monotonically
//! increasing sequence number, so a run is a pure function of
//! `(seed, configuration, driver logic)`.

use obs::{TraceConfig, TraceEvent, Tracer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::disk::{DiskConfig, DiskModel, StableOp, StableStore};
use crate::net::{DropReason, NetConfig, Network, Transmission};
use crate::node::{Incarnation, NodeId, NodeState, NodeStatus};
use crate::queue::EventWheel;
use crate::time::{SimDuration, SimTime};

/// An observable event delivered to the driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event<M> {
    /// A network message has arrived at `to`.
    Message {
        /// Sender.
        from: NodeId,
        /// Receiver (up at delivery time).
        to: NodeId,
        /// Payload.
        payload: M,
    },
    /// A timer set by the current incarnation of `node` has fired.
    Timer {
        /// Owner of the timer.
        node: NodeId,
        /// Caller-chosen token identifying the timer.
        token: u64,
    },
    /// A durable write issued by the current incarnation has completed;
    /// its mutation is now visible in the node's [`StableStore`].
    DiskWriteDone {
        /// Owner of the disk.
        node: NodeId,
        /// Caller-chosen token identifying the write.
        token: u64,
    },
    /// A bulk disk read has completed.
    DiskReadDone {
        /// Owner of the disk.
        node: NodeId,
        /// Caller-chosen token identifying the read.
        token: u64,
        /// The bytes read (`None` if the key did not exist).
        value: Option<Vec<u8>>,
    },
    /// A durable write issued by the current incarnation has *failed*
    /// (injected media error): nothing reached the platter. Mirrors a
    /// failed `fsync`, after which the write's durability is unknowable;
    /// the only sound driver reaction is to fail-stop the process.
    DiskWriteFailed {
        /// Owner of the disk.
        node: NodeId,
        /// Caller-chosen token identifying the write.
        token: u64,
    },
}

/// Injected disk fault behaviour for one node, set via
/// [`Engine::set_disk_fault`]. Draws come from the engine's seeded RNG,
/// so faulty runs stay deterministic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskFault {
    /// Probability in `[0, 1]` that a durable write fails instead of
    /// completing ([`Event::DiskWriteFailed`] is delivered and nothing
    /// is persisted).
    pub write_fail_probability: f64,
    /// On crash, the earliest in-flight log append is *torn*: a strict
    /// prefix of the entry reaches the platter instead of the write
    /// being wholly lost. Recovery must detect and discard the tail.
    pub torn_tail_on_crash: bool,
}

impl Default for DiskFault {
    fn default() -> Self {
        DiskFault {
            write_fail_probability: 0.0,
            torn_tail_on_crash: false,
        }
    }
}

#[derive(Debug)]
enum Pending<M> {
    Message {
        from: NodeId,
        to: NodeId,
        payload: M,
        /// Wire size the sender paid for, kept so a delivery-time drop
        /// (destination down) can be traced with the same detail as a
        /// transmit-time drop.
        bytes: u64,
        /// Transmission id stamped at send time; pairs the delivery (or
        /// drop) trace record with its `MsgSent`. Duplicate copies of
        /// one send share the id.
        xid: u64,
    },
    Timer {
        node: NodeId,
        inc: Incarnation,
        token: u64,
    },
    DiskWrite {
        node: NodeId,
        inc: Incarnation,
        token: u64,
        op: StableOp,
    },
    DiskWriteFail {
        node: NodeId,
        inc: Incarnation,
        token: u64,
    },
    DiskRead {
        node: NodeId,
        inc: Incarnation,
        token: u64,
        key: String,
    },
}

/// Configuration of a simulation run.
#[derive(Debug, Clone, Default)]
pub struct SimConfig {
    /// Network model parameters.
    pub net: NetConfig,
    /// Disk model parameters (same for every node, like the paper's
    /// homogeneous cluster).
    pub disk: DiskConfig,
}

/// The discrete-event simulation engine.
///
/// ```
/// use simnet::{Engine, Event, SimConfig, SimDuration, SimTime, NodeId};
///
/// let mut engine: Engine<&'static str> = Engine::new(2, SimConfig::default(), 7);
/// engine.send(NodeId(0), NodeId(1), "ping");
/// let (t, ev) = engine.next_event_before(SimTime::from_secs(1)).expect("delivery");
/// assert!(t > SimTime::ZERO);
/// assert!(matches!(ev, Event::Message { payload: "ping", .. }));
/// ```
#[derive(Debug)]
pub struct Engine<M> {
    now: SimTime,
    seq: u64,
    queue: EventWheel<Pending<M>>,
    nodes: Vec<NodeState>,
    net: Network,
    disks: Vec<DiskModel>,
    stores: Vec<StableStore>,
    disk_faults: Vec<Option<DiskFault>>,
    writes_failed: u64,
    torn_writes: u64,
    dispatched: u64,
    /// Next transmission id. Advances on every send attempt, traced or
    /// not, so a run's xids are identical with tracing on or off.
    next_xid: u64,
    rng: StdRng,
    default_msg_bytes: u64,
    tracer: Tracer,
}

impl<M: std::fmt::Debug> Engine<M> {
    /// Creates an engine with `nodes` node slots, all initially up, and a
    /// deterministic RNG seeded with `seed`.
    pub fn new(nodes: usize, config: SimConfig, seed: u64) -> Self {
        Engine {
            now: SimTime::ZERO,
            seq: 0,
            queue: EventWheel::new(),
            nodes: vec![NodeState::default(); nodes],
            net: Network::new(config.net),
            disks: (0..nodes)
                .map(|_| DiskModel::new(config.disk.clone()))
                .collect(),
            stores: (0..nodes).map(|_| StableStore::new()).collect(),
            disk_faults: vec![None; nodes],
            writes_failed: 0,
            torn_writes: 0,
            dispatched: 0,
            next_xid: 0,
            rng: StdRng::seed_from_u64(seed),
            default_msg_bytes: 512,
            tracer: Tracer::disabled(),
        }
    }

    /// Installs the run's trace sink per `config` (disabled by default).
    ///
    /// The engine owns the tracer so records are appended in its
    /// deterministic dispatch order: the trace of a `(seed, config)`
    /// pair is bit-identical across runs.
    pub fn enable_tracing(&mut self, config: TraceConfig) {
        self.tracer = Tracer::new(config);
    }

    /// The run's trace sink.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Mutable access to the trace sink (end-of-run extraction, metric
    /// observations).
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// Whether tracing is on — lets drivers skip building events whose
    /// construction is not free.
    #[inline]
    pub fn trace_enabled(&self) -> bool {
        self.tracer.enabled()
    }

    /// Whether any trace sink is live — full record capture *or* the
    /// bounded flight ring. Drivers that build events for [`Engine::trace`]
    /// should gate on this, not [`Engine::trace_enabled`], so the flight
    /// recorder sees protocol events too.
    #[inline]
    pub fn trace_active(&self) -> bool {
        self.tracer.active()
    }

    /// Records `event` against `node`, stamped with the current
    /// simulated time. No-op when tracing is off.
    #[inline]
    pub fn trace(&mut self, node: NodeId, event: TraceEvent) {
        self.tracer
            .emit(self.now.as_micros(), node.index() as u32, event);
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of node slots.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The run's random number generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// The network model (for partitions and statistics).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// Read access to the network model.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Whether `node` is currently up.
    pub fn is_up(&self, node: NodeId) -> bool {
        self.nodes
            .get(node.index())
            .is_some_and(|n| n.status == NodeStatus::Up)
    }

    /// Lifecycle record of `node`.
    pub fn node_state(&self, node: NodeId) -> &NodeState {
        &self.nodes[node.index()]
    }

    /// Synchronous view of a node's durable storage.
    ///
    /// Reading this does not model latency; use [`Engine::disk_read`] when
    /// the read cost matters (e.g. checkpoint loading during recovery).
    pub fn store(&self, node: NodeId) -> &StableStore {
        &self.stores[node.index()]
    }

    /// The node's disk statistics.
    pub fn disk(&self, node: NodeId) -> &DiskModel {
        &self.disks[node.index()]
    }

    fn push(&mut self, at: SimTime, pending: Pending<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(at.as_micros(), seq, pending);
    }

    /// Sends `payload` from `from` to `to` with the default size hint.
    ///
    /// Silently does nothing if `from` is down (a dead process sends no
    /// messages). The message may be dropped by the network model, or
    /// duplicated when a [`crate::LinkFault`] is installed on the link.
    /// Returns the transmission id stamped on the send's trace records.
    pub fn send(&mut self, from: NodeId, to: NodeId, payload: M) -> u64
    where
        M: Clone,
    {
        self.send_sized(from, to, payload, self.default_msg_bytes)
    }

    /// Sends with an explicit wire size in bytes (drives serialization
    /// latency; large state-transfer messages should use this).
    ///
    /// Returns the transmission id: every call burns a fresh id (even
    /// for a down sender, so ids are trace-independent), and the id
    /// joins the `MsgSent` record with the matching `MsgRecv`,
    /// `MsgDropped` or `MsgDuplicated` records of the same transmission.
    pub fn send_sized(&mut self, from: NodeId, to: NodeId, payload: M, bytes: u64) -> u64
    where
        M: Clone,
    {
        let xid = self.next_xid;
        self.next_xid += 1;
        if !self.is_up(from) {
            return xid;
        }
        self.trace(
            from,
            TraceEvent::MsgSent {
                xid,
                to: to.index() as u32,
                bytes,
            },
        );
        match self.net.transmit(&mut self.rng, from, to, bytes) {
            Transmission::Deliver(delay) => {
                let at = self.now + delay;
                self.push(
                    at,
                    Pending::Message {
                        from,
                        to,
                        payload,
                        bytes,
                        xid,
                    },
                );
            }
            Transmission::DeliverDup(first, second) => {
                let at_first = self.now + first;
                let at_second = self.now + second;
                self.push(
                    at_first,
                    Pending::Message {
                        from,
                        to,
                        payload: payload.clone(),
                        bytes,
                        xid,
                    },
                );
                self.push(
                    at_second,
                    Pending::Message {
                        from,
                        to,
                        payload,
                        bytes,
                        xid,
                    },
                );
                self.trace(
                    from,
                    TraceEvent::MsgDuplicated {
                        xid,
                        to: to.index() as u32,
                    },
                );
            }
            Transmission::Dropped(reason) => {
                self.trace(
                    from,
                    TraceEvent::MsgDropped {
                        xid,
                        to: to.index() as u32,
                        bytes,
                        reason: reason.tag(),
                    },
                );
            }
        }
        xid
    }

    /// Sets a timer for the *current incarnation* of `node`; it fires as
    /// [`Event::Timer`] after `after`, unless the node crashes first.
    pub fn set_timer(&mut self, node: NodeId, after: SimDuration, token: u64) {
        let inc = self.nodes[node.index()].incarnation;
        let at = self.now + after;
        self.push(at, Pending::Timer { node, inc, token });
    }

    /// Issues a durable write for the current incarnation of `node`.
    ///
    /// The mutation becomes visible in the node's [`StableStore`] at the
    /// completion time, when [`Event::DiskWriteDone`] is delivered. If the
    /// node crashes before completion the write is lost entirely.
    pub fn disk_write(&mut self, node: NodeId, op: StableOp, token: u64) {
        if !self.is_up(node) {
            return;
        }
        let inc = self.nodes[node.index()].incarnation;
        let latency = self.disks[node.index()].write_latency(&op);
        let at = self.now + latency;
        if let Some(fault) = self.disk_faults[node.index()] {
            if fault.write_fail_probability > 0.0
                && self.rng.gen::<f64>() < fault.write_fail_probability
            {
                self.writes_failed += 1;
                // The op is dropped: a failed write persists nothing.
                self.push(at, Pending::DiskWriteFail { node, inc, token });
                return;
            }
        }
        self.push(
            at,
            Pending::DiskWrite {
                node,
                inc,
                token,
                op,
            },
        );
    }

    /// Installs (`Some`) or clears (`None`) an injected disk fault
    /// profile on `node`. Takes effect for writes issued afterwards.
    pub fn set_disk_fault(&mut self, node: NodeId, fault: Option<DiskFault>) {
        self.disk_faults[node.index()] = fault;
    }

    /// The injected disk fault profile active on `node`, if any.
    pub fn disk_fault(&self, node: NodeId) -> Option<&DiskFault> {
        self.disk_faults[node.index()].as_ref()
    }

    /// Number of injected disk-write failures delivered so far.
    pub fn disk_writes_failed(&self) -> u64 {
        self.writes_failed
    }

    /// Number of log appends torn (partially persisted) by crashes.
    pub fn disk_writes_torn(&self) -> u64 {
        self.torn_writes
    }

    /// Issues a bulk read of `key` from the node's key/value area; the
    /// latency is proportional to the key's modeled size (its nominal
    /// override when set). Completes as [`Event::DiskReadDone`].
    pub fn disk_read(&mut self, node: NodeId, key: &str, token: u64) {
        if !self.is_up(node) {
            return;
        }
        let inc = self.nodes[node.index()].incarnation;
        let bytes = self.stores[node.index()].nominal_size(key);
        let latency = self.disks[node.index()].read_latency(bytes);
        let at = self.now + latency;
        self.push(
            at,
            Pending::DiskRead {
                node,
                inc,
                token,
                key: key.to_string(),
            },
        );
    }

    /// Issues a raw bulk read of `bytes` from the node's disk with no key
    /// (e.g. replaying a whole log file); completes as
    /// [`Event::DiskReadDone`] with `value: None`.
    pub fn disk_read_raw(&mut self, node: NodeId, bytes: u64, token: u64) {
        if !self.is_up(node) {
            return;
        }
        let inc = self.nodes[node.index()].incarnation;
        let latency = self.disks[node.index()].read_latency(bytes);
        let at = self.now + latency;
        self.push(
            at,
            Pending::DiskRead {
                node,
                inc,
                token,
                key: String::new(),
            },
        );
    }

    /// Durably sets the modeled size of `key` on the node's disk
    /// (latency-free; pair with the write that created the key).
    pub fn set_nominal(&mut self, node: NodeId, key: &str, bytes: u64) {
        self.stores[node.index()].set_nominal(key, bytes);
    }

    /// Crashes `node`: its volatile state is gone (the driver must drop
    /// its actor), in-flight timers and disk operations are purged from
    /// the event queue, and in-flight messages addressed to it will be
    /// dropped on arrival while it remains down (counted and traced as
    /// `dest_down` drops). Stable storage survives.
    ///
    /// # Panics
    ///
    /// Panics if the node is already down — faultloads are expressed
    /// against live replicas.
    pub fn crash(&mut self, node: NodeId) {
        let state = &mut self.nodes[node.index()];
        assert_eq!(state.status, NodeStatus::Up, "crash of a down node {node}");
        let inc = state.incarnation;
        state.status = NodeStatus::Down;
        state.crashes += 1;
        self.trace(node, TraceEvent::Crash);
        let torn = self.disk_faults[node.index()]
            .map(|f| f.torn_tail_on_crash)
            .unwrap_or(false);
        if torn {
            self.tear_in_flight_append(node, inc);
        }
        // Purge the dead incarnation's queued work eagerly instead of
        // discarding it lazily at pop time: [`Engine::queued_events`]
        // then reports the live count exactly. In-flight *messages* to
        // the node stay queued — they are genuinely in the network and
        // may still be delivered if the node restarts before they
        // arrive (or dropped as `dest_down` if it does not).
        self.queue.retain(|pending| match pending {
            Pending::Message { .. } => true,
            Pending::Timer { node: n, .. }
            | Pending::DiskWrite { node: n, .. }
            | Pending::DiskWriteFail { node: n, .. }
            | Pending::DiskRead { node: n, .. } => *n != node,
        });
    }

    /// Torn-tail injection: the in-flight log append closest to
    /// completion at crash time leaves a strict prefix of its entry on
    /// the platter (a power cut mid-sector). Later in-flight appends are
    /// wholly lost, as usual.
    ///
    /// An entry shorter than 2 bytes has no non-empty strict prefix, so
    /// nothing reaches the platter: the append is wholly lost, exactly
    /// like an untorn crash. The armed fault still *fired*, though, so
    /// the tear is counted and traced with `bytes_kept: 0` — otherwise
    /// a 1-byte append would make the crash invisible in
    /// [`Engine::disk_writes_torn`] and the trace.
    fn tear_in_flight_append(&mut self, node: NodeId, inc: Incarnation) {
        let mut best: Option<(u64, u64, &str, &[u8])> = None;
        for (at, seq, pending) in self.queue.iter() {
            if let Pending::DiskWrite {
                node: n,
                inc: i,
                op: StableOp::Append { log, entry: bytes },
                ..
            } = pending
            {
                if *n == node
                    && *i == inc
                    && best.map(|(a, s, ..)| (at, seq) < (a, s)).unwrap_or(true)
                {
                    best = Some((at, seq, log, bytes));
                }
            }
        }
        if let Some((_, _, log, bytes)) = best {
            if bytes.len() >= 2 {
                let log = log.to_string();
                let keep = self.rng.gen_range(1..bytes.len());
                let prefix = bytes[..keep].to_vec();
                self.torn_writes += 1;
                self.stores[node.index()].apply(StableOp::Append { log, entry: prefix });
                self.trace(
                    node,
                    TraceEvent::TornWrite {
                        bytes_kept: keep as u64,
                    },
                );
            } else {
                // No strict prefix exists: wholly lost, but still a tear.
                self.torn_writes += 1;
                self.trace(node, TraceEvent::TornWrite { bytes_kept: 0 });
            }
        }
    }

    /// Restarts `node` with a fresh incarnation. The driver must construct
    /// a fresh actor that recovers from the node's [`StableStore`].
    ///
    /// # Panics
    ///
    /// Panics if the node is already up.
    pub fn restart(&mut self, node: NodeId) {
        let state = &mut self.nodes[node.index()];
        assert_eq!(
            state.status,
            NodeStatus::Down,
            "restart of an up node {node}"
        );
        state.status = NodeStatus::Up;
        state.incarnation = state.incarnation.next();
        let incarnation = state.incarnation.0;
        self.trace(node, TraceEvent::Restart { incarnation });
    }

    /// Pops the next observable event at or before `limit`.
    ///
    /// Advances the clock to the event's time and returns it. Messages
    /// whose destination is down at delivery time are dropped here —
    /// counted against the network's drop statistics and traced with
    /// reason `dest_down` — and the loop continues to the next entry.
    /// (Timers and disk completions of dead incarnations are purged
    /// eagerly by [`Engine::crash`]; the incarnation guards below are
    /// defense in depth.) Returns `None` — with the clock advanced to
    /// `limit` — when no event remains before the limit.
    pub fn next_event_before(&mut self, limit: SimTime) -> Option<(SimTime, Event<M>)> {
        loop {
            let Some((at, _seq, pending)) = self.queue.pop_before(limit.as_micros()) else {
                self.now = limit.max(self.now);
                return None;
            };
            self.now = SimTime::from_micros(at);
            match pending {
                Pending::Message {
                    from,
                    to,
                    payload,
                    bytes,
                    xid,
                } => {
                    if self.is_up(to) {
                        self.dispatched += 1;
                        self.trace(
                            to,
                            TraceEvent::MsgRecv {
                                xid,
                                from: from.index() as u32,
                                bytes,
                            },
                        );
                        return Some((self.now, Event::Message { from, to, payload }));
                    }
                    // The message reached a dead process: account for it
                    // like any other loss so crash-window drop series
                    // and counters stay truthful.
                    self.net.note_dropped();
                    self.trace(
                        from,
                        TraceEvent::MsgDropped {
                            xid,
                            to: to.index() as u32,
                            bytes,
                            reason: DropReason::DestDown.tag(),
                        },
                    );
                }
                Pending::Timer { node, inc, token } => {
                    if self.is_up(node) && self.nodes[node.index()].incarnation == inc {
                        self.dispatched += 1;
                        return Some((self.now, Event::Timer { node, token }));
                    }
                }
                Pending::DiskWrite {
                    node,
                    inc,
                    token,
                    op,
                } => {
                    if self.is_up(node) && self.nodes[node.index()].incarnation == inc {
                        self.stores[node.index()].apply(op);
                        self.dispatched += 1;
                        return Some((self.now, Event::DiskWriteDone { node, token }));
                    }
                }
                Pending::DiskWriteFail { node, inc, token } => {
                    if self.is_up(node) && self.nodes[node.index()].incarnation == inc {
                        self.trace(node, TraceEvent::DiskWriteFailed);
                        self.dispatched += 1;
                        return Some((self.now, Event::DiskWriteFailed { node, token }));
                    }
                }
                Pending::DiskRead {
                    node,
                    inc,
                    token,
                    key,
                } => {
                    if self.is_up(node) && self.nodes[node.index()].incarnation == inc {
                        let value = if key.is_empty() {
                            None
                        } else {
                            self.stores[node.index()].get(&key).map(<[u8]>::to_vec)
                        };
                        self.dispatched += 1;
                        return Some((self.now, Event::DiskReadDone { node, token, value }));
                    }
                }
            }
        }
    }

    /// Number of *live* events still queued. [`Engine::crash`] purges
    /// the dead incarnation's timers and disk operations eagerly, so
    /// this is exact: in-flight messages (deliverable if their
    /// destination is, or comes back, up) plus live timers and disk
    /// completions. Gauges sampled from this no longer inflate after
    /// crashes.
    pub fn queued_events(&self) -> usize {
        self.queue.len()
    }

    /// Number of observable events dispatched to the driver so far (the
    /// denominator of the engine's events-per-second throughput point).
    pub fn events_dispatched(&self) -> u64 {
        self.dispatched
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type E = Engine<u32>;

    fn engine(nodes: usize) -> E {
        Engine::new(nodes, SimConfig::default(), 99)
    }

    fn drain(e: &mut E, limit: SimTime) -> Vec<(SimTime, Event<u32>)> {
        let mut out = Vec::new();
        while let Some(ev) = e.next_event_before(limit) {
            out.push(ev);
        }
        out
    }

    #[test]
    fn message_delivery_advances_clock() {
        let mut e = engine(2);
        e.send(NodeId(0), NodeId(1), 7);
        let (t, ev) = e.next_event_before(SimTime::from_secs(1)).unwrap();
        assert!(t > SimTime::ZERO);
        assert_eq!(
            ev,
            Event::Message {
                from: NodeId(0),
                to: NodeId(1),
                payload: 7
            }
        );
        assert_eq!(e.now(), t);
    }

    #[test]
    fn no_event_before_limit_advances_to_limit() {
        let mut e = engine(1);
        assert!(e.next_event_before(SimTime::from_secs(5)).is_none());
        assert_eq!(e.now(), SimTime::from_secs(5));
    }

    #[test]
    fn events_pop_in_time_order_with_fifo_ties() {
        let mut e = engine(2);
        e.set_timer(NodeId(0), SimDuration::from_millis(10), 1);
        e.set_timer(NodeId(0), SimDuration::from_millis(5), 2);
        e.set_timer(NodeId(0), SimDuration::from_millis(5), 3);
        let evs = drain(&mut e, SimTime::from_secs(1));
        let tokens: Vec<u64> = evs
            .iter()
            .map(|(_, ev)| match ev {
                Event::Timer { token, .. } => *token,
                _ => panic!("expected timer"),
            })
            .collect();
        assert_eq!(tokens, vec![2, 3, 1]);
    }

    #[test]
    fn crashed_node_receives_nothing() {
        let mut e = engine(2);
        e.send(NodeId(0), NodeId(1), 1);
        e.crash(NodeId(1));
        assert!(drain(&mut e, SimTime::from_secs(1)).is_empty());
    }

    #[test]
    fn crashed_node_sends_nothing() {
        let mut e = engine(2);
        e.crash(NodeId(0));
        e.send(NodeId(0), NodeId(1), 1);
        assert!(drain(&mut e, SimTime::from_secs(1)).is_empty());
    }

    #[test]
    fn message_sent_before_crash_arrives_after_restart() {
        let mut e = engine(2);
        e.send(NodeId(0), NodeId(1), 9);
        e.crash(NodeId(1));
        e.restart(NodeId(1));
        let evs = drain(&mut e, SimTime::from_secs(1));
        assert_eq!(evs.len(), 1, "restarted node should receive the message");
    }

    #[test]
    fn stale_timer_discarded_after_restart() {
        let mut e = engine(1);
        e.set_timer(NodeId(0), SimDuration::from_millis(1), 42);
        e.crash(NodeId(0));
        e.restart(NodeId(0));
        assert!(drain(&mut e, SimTime::from_secs(1)).is_empty());
        // A fresh timer set by the new incarnation does fire.
        e.set_timer(NodeId(0), SimDuration::from_millis(1), 43);
        let evs = drain(&mut e, SimTime::from_secs(2));
        assert_eq!(evs.len(), 1);
    }

    #[test]
    fn disk_write_durable_only_at_completion() {
        let mut e = engine(1);
        e.disk_write(
            NodeId(0),
            StableOp::Put {
                key: "k".into(),
                value: b"v".to_vec(),
            },
            5,
        );
        assert_eq!(e.store(NodeId(0)).get("k"), None, "not durable yet");
        let (_, ev) = e.next_event_before(SimTime::from_secs(1)).unwrap();
        assert_eq!(
            ev,
            Event::DiskWriteDone {
                node: NodeId(0),
                token: 5
            }
        );
        assert_eq!(e.store(NodeId(0)).get("k"), Some(&b"v"[..]));
    }

    #[test]
    fn in_flight_write_lost_on_crash() {
        let mut e = engine(1);
        e.disk_write(
            NodeId(0),
            StableOp::Put {
                key: "k".into(),
                value: b"v".to_vec(),
            },
            5,
        );
        e.crash(NodeId(0));
        e.restart(NodeId(0));
        assert!(drain(&mut e, SimTime::from_secs(1)).is_empty());
        assert_eq!(e.store(NodeId(0)).get("k"), None, "write must be lost");
    }

    #[test]
    fn stable_store_survives_crash() {
        let mut e = engine(1);
        e.disk_write(
            NodeId(0),
            StableOp::Put {
                key: "k".into(),
                value: b"v".to_vec(),
            },
            1,
        );
        drain(&mut e, SimTime::from_secs(1));
        e.crash(NodeId(0));
        e.restart(NodeId(0));
        assert_eq!(e.store(NodeId(0)).get("k"), Some(&b"v"[..]));
    }

    #[test]
    fn disk_read_latency_proportional_to_size() {
        let mut e = engine(1);
        e.disk_write(
            NodeId(0),
            StableOp::Put {
                key: "big".into(),
                value: vec![0u8; 60_000_000],
            },
            1,
        );
        drain(&mut e, SimTime::from_secs(10));
        let start = e.now();
        e.disk_read(NodeId(0), "big", 2);
        let (t, ev) = e.next_event_before(SimTime::from_secs(100)).unwrap();
        match ev {
            Event::DiskReadDone { value, .. } => {
                assert_eq!(value.unwrap().len(), 60_000_000);
            }
            other => panic!("unexpected {other:?}"),
        }
        // 60 MB at 60 MB/s ~ 1s.
        let elapsed = t.saturating_since(start);
        assert!(
            elapsed >= SimDuration::from_millis(900),
            "elapsed {elapsed}"
        );
    }

    #[test]
    fn disk_read_missing_key_returns_none() {
        let mut e = engine(1);
        e.disk_read(NodeId(0), "absent", 3);
        let (_, ev) = e.next_event_before(SimTime::from_secs(1)).unwrap();
        assert_eq!(
            ev,
            Event::DiskReadDone {
                node: NodeId(0),
                token: 3,
                value: None
            }
        );
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = |seed: u64| {
            let mut e: E = Engine::new(3, SimConfig::default(), seed);
            for i in 0..50 {
                e.send(NodeId(i % 3), NodeId((i + 1) % 3), i as u32);
            }
            drain(&mut e, SimTime::from_secs(1))
                .into_iter()
                .map(|(t, _)| t.as_micros())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should jitter differently");
    }

    #[test]
    #[should_panic(expected = "crash of a down node")]
    fn double_crash_panics() {
        let mut e = engine(1);
        e.crash(NodeId(0));
        e.crash(NodeId(0));
    }

    #[test]
    #[should_panic(expected = "restart of an up node")]
    fn restart_of_up_node_panics() {
        let mut e = engine(1);
        e.restart(NodeId(0));
    }

    #[test]
    fn crash_counter_increments() {
        let mut e = engine(1);
        e.crash(NodeId(0));
        e.restart(NodeId(0));
        e.crash(NodeId(0));
        assert_eq!(e.node_state(NodeId(0)).crashes, 2);
    }
}

#[cfg(test)]
mod extended_tests {
    use super::*;

    #[test]
    fn raw_read_pays_latency_without_data() {
        let mut e: Engine<u8> = Engine::new(1, SimConfig::default(), 1);
        e.disk_read_raw(NodeId(0), 16_000_000, 9);
        let (t, ev) = e.next_event_before(SimTime::from_secs(10)).unwrap();
        assert_eq!(
            ev,
            Event::DiskReadDone {
                node: NodeId(0),
                token: 9,
                value: None
            }
        );
        // 16 MB at the 8 MB/s restore rate ≈ 2 s.
        assert!(t >= SimTime::from_millis(1_900), "t={t}");
    }

    #[test]
    fn nominal_size_drives_keyed_read_latency() {
        let mut e: Engine<u8> = Engine::new(1, SimConfig::default(), 1);
        e.disk_write(
            NodeId(0),
            StableOp::Put {
                key: "ckpt".into(),
                value: vec![1, 2, 3],
            },
            1,
        );
        while e.next_event_before(SimTime::from_secs(1)).is_some() {}
        e.set_nominal(NodeId(0), "ckpt", 8_000_000);
        let start = e.now();
        e.disk_read(NodeId(0), "ckpt", 2);
        let (t, ev) = e.next_event_before(SimTime::from_secs(10)).unwrap();
        match ev {
            Event::DiskReadDone { value, .. } => {
                assert_eq!(value.unwrap(), vec![1, 2, 3], "real bytes returned");
            }
            other => panic!("unexpected {other:?}"),
        }
        // Latency reflects the 8 MB nominal size (~1 s), not 3 bytes.
        assert!(t.saturating_since(start) >= SimDuration::from_millis(900));
    }

    #[test]
    fn delete_op_removes_key_and_nominal() {
        let mut e: Engine<u8> = Engine::new(1, SimConfig::default(), 1);
        e.disk_write(
            NodeId(0),
            StableOp::Put {
                key: "old".into(),
                value: vec![7],
            },
            1,
        );
        while e.next_event_before(SimTime::from_secs(1)).is_some() {}
        e.set_nominal(NodeId(0), "old", 999);
        e.disk_write(NodeId(0), StableOp::Delete { key: "old".into() }, 2);
        while e.next_event_before(SimTime::from_secs(2)).is_some() {}
        assert_eq!(e.store(NodeId(0)).get("old"), None);
        assert_eq!(e.store(NodeId(0)).nominal_size("old"), 0);
    }

    #[test]
    fn duplicated_message_arrives_twice() {
        let mut e: Engine<u8> = Engine::new(2, SimConfig::default(), 3);
        e.network_mut().set_link_fault(
            NodeId(0),
            NodeId(1),
            crate::LinkFault {
                duplicate: 1.0,
                ..crate::LinkFault::default()
            },
        );
        e.send(NodeId(0), NodeId(1), 7);
        let mut seen = 0;
        while let Some((_, ev)) = e.next_event_before(SimTime::from_secs(1)) {
            assert!(matches!(ev, Event::Message { payload: 7, .. }));
            seen += 1;
        }
        assert_eq!(seen, 2, "one copy plus one duplicate");
    }

    #[test]
    fn failing_write_persists_nothing_and_reports_failure() {
        let mut e: Engine<u8> = Engine::new(1, SimConfig::default(), 4);
        e.set_disk_fault(
            NodeId(0),
            Some(DiskFault {
                write_fail_probability: 1.0,
                torn_tail_on_crash: false,
            }),
        );
        e.disk_write(
            NodeId(0),
            StableOp::Put {
                key: "k".into(),
                value: b"v".to_vec(),
            },
            8,
        );
        let (_, ev) = e.next_event_before(SimTime::from_secs(1)).unwrap();
        assert_eq!(
            ev,
            Event::DiskWriteFailed {
                node: NodeId(0),
                token: 8
            }
        );
        assert_eq!(
            e.store(NodeId(0)).get("k"),
            None,
            "failed write persists nothing"
        );
        assert_eq!(e.disk_writes_failed(), 1);
    }

    #[test]
    fn torn_tail_leaves_strict_prefix_of_in_flight_append() {
        let mut e: Engine<u8> = Engine::new(1, SimConfig::default(), 5);
        e.set_disk_fault(
            NodeId(0),
            Some(DiskFault {
                write_fail_probability: 0.0,
                torn_tail_on_crash: true,
            }),
        );
        let entry: Vec<u8> = (0..64).collect();
        e.disk_write(
            NodeId(0),
            StableOp::Append {
                log: "wal".into(),
                entry: entry.clone(),
            },
            1,
        );
        e.crash(NodeId(0));
        e.restart(NodeId(0));
        assert!(e.next_event_before(SimTime::from_secs(1)).is_none());
        let log = e.store(NodeId(0)).log("wal").expect("torn prefix appended");
        let entries: Vec<_> = log.iter().collect();
        assert_eq!(entries.len(), 1);
        let torn = entries[0].1;
        assert!(
            !torn.is_empty() && torn.len() < entry.len(),
            "strict prefix"
        );
        assert_eq!(torn, &entry[..torn.len()]);
        assert_eq!(e.disk_writes_torn(), 1);
    }

    #[test]
    fn torn_tail_without_fault_loses_write_entirely() {
        let mut e: Engine<u8> = Engine::new(1, SimConfig::default(), 5);
        e.disk_write(
            NodeId(0),
            StableOp::Append {
                log: "wal".into(),
                entry: vec![1, 2, 3, 4],
            },
            1,
        );
        e.crash(NodeId(0));
        e.restart(NodeId(0));
        assert!(
            e.store(NodeId(0)).log("wal").is_none(),
            "no torn fault: lost wholly"
        );
    }

    #[test]
    fn crashed_node_ignores_reads_and_raw_reads() {
        let mut e: Engine<u8> = Engine::new(1, SimConfig::default(), 1);
        e.crash(NodeId(0));
        e.disk_read(NodeId(0), "x", 1);
        e.disk_read_raw(NodeId(0), 1_000, 2);
        assert!(e.next_event_before(SimTime::from_secs(5)).is_none());
    }

    fn engine(nodes: usize) -> Engine<u32> {
        Engine::new(nodes, SimConfig::default(), 99)
    }

    fn drain(e: &mut Engine<u32>, limit: SimTime) -> Vec<(SimTime, Event<u32>)> {
        let mut out = Vec::new();
        while let Some(ev) = e.next_event_before(limit) {
            out.push(ev);
        }
        out
    }

    // Regression: messages popped for a down destination used to vanish
    // without touching the drop counter or the trace, undercounting
    // losses exactly inside the crash windows the paper measures.
    #[test]
    fn dest_down_drop_counted_and_traced() {
        let mut e = engine(2);
        e.enable_tracing(TraceConfig::on());
        e.send(NodeId(0), NodeId(1), 7);
        e.crash(NodeId(1));
        assert!(drain(&mut e, SimTime::from_secs(1)).is_empty());
        assert_eq!(e.network().messages_dropped(), 1);
        let records = e.tracer_mut().take_records();
        let drop = records
            .iter()
            .find(|r| matches!(r.event, TraceEvent::MsgDropped { .. }))
            .expect("delivery-time drop must be traced");
        assert_eq!(drop.node, 0, "traced against the sender");
        match drop.event {
            TraceEvent::MsgDropped { to, reason, .. } => {
                assert_eq!(to, 1);
                assert_eq!(reason, "dest_down");
            }
            _ => unreachable!(),
        }
    }

    // Regression: queued_events used to report the raw heap length,
    // counting dead-incarnation timers and disk ops long after a crash
    // and inflating the once-per-second queue-depth gauges.
    #[test]
    fn queued_events_excludes_dead_incarnation_entries() {
        let mut e = engine(2);
        e.set_timer(NodeId(0), SimDuration::from_millis(1), 1);
        e.set_timer(NodeId(0), SimDuration::from_millis(2), 2);
        e.disk_write(
            NodeId(0),
            StableOp::Put {
                key: "k".into(),
                value: b"v".to_vec(),
            },
            3,
        );
        e.send(NodeId(1), NodeId(0), 4);
        assert_eq!(e.queued_events(), 4);
        e.crash(NodeId(0));
        // The dead incarnation's timers and write are gone; the
        // in-flight message stays (deliverable after a restart).
        assert_eq!(e.queued_events(), 1);
        e.restart(NodeId(0));
        drain(&mut e, SimTime::from_secs(1));
        assert_eq!(e.queued_events(), 0);
    }

    // Regression: a torn-tail crash over a 1-byte append used to skip
    // the injection silently — no counter bump, no trace — because a
    // 1-byte entry has no strict non-empty prefix.
    #[test]
    fn torn_tail_one_byte_append_counted_and_traced() {
        let mut e: Engine<u8> = Engine::new(1, SimConfig::default(), 5);
        e.enable_tracing(TraceConfig::on());
        e.set_disk_fault(
            NodeId(0),
            Some(DiskFault {
                write_fail_probability: 0.0,
                torn_tail_on_crash: true,
            }),
        );
        e.disk_write(
            NodeId(0),
            StableOp::Append {
                log: "wal".into(),
                entry: vec![0xAB],
            },
            1,
        );
        e.crash(NodeId(0));
        e.restart(NodeId(0));
        assert!(e.next_event_before(SimTime::from_secs(1)).is_none());
        assert!(
            e.store(NodeId(0)).log("wal").is_none(),
            "1-byte entry has no strict prefix: nothing lands"
        );
        assert_eq!(e.disk_writes_torn(), 1, "the torn fault still counts");
        let records = e.tracer_mut().take_records();
        assert!(
            records
                .iter()
                .any(|r| matches!(r.event, TraceEvent::TornWrite { bytes_kept: 0 })),
            "zero-byte torn write must be traced"
        );
    }

    // Crash-heavy stress: after repeated crash/restart churn and a full
    // drain, the live queue length must return exactly to zero — the
    // wheel may not leak entries in any of its three regions.
    #[test]
    fn crash_churn_drains_queue_to_zero() {
        let mut e = engine(3);
        for round in 0u64..20 {
            for n in 0..3u64 {
                e.set_timer(NodeId(n as usize), SimDuration::from_millis(1 + n), round);
                e.send(
                    NodeId(n as usize),
                    NodeId(((n + 1) % 3) as usize),
                    round as u32,
                );
                e.disk_write(
                    NodeId(n as usize),
                    StableOp::Put {
                        key: format!("k{n}"),
                        value: vec![round as u8],
                    },
                    round,
                );
            }
            let victim = NodeId((round % 3) as usize);
            e.crash(victim);
            let horizon = e.now() + SimDuration::from_millis(2);
            drain(&mut e, horizon);
            e.restart(victim);
        }
        let end = e.now() + SimDuration::from_secs(10);
        drain(&mut e, end);
        assert_eq!(e.queued_events(), 0, "no entry may survive the drain");
        assert!(e.events_dispatched() > 0);
    }
}
