//! # simnet — deterministic discrete-event simulation substrate
//!
//! This crate stands in for the paper's physical testbed: an 18-node
//! cluster of Xeon machines with 7200 rpm disks behind one 1 Gbps
//! Ethernet switch ("Dynamic Content Web Applications: Crash, Failover,
//! and Recovery Analysis", DSN 2009, §5.1). Every higher layer of the
//! reproduction — the Paxos/Fast Paxos implementation, the Treplica
//! middleware, the TPC-W application servers, the reverse proxy and the
//! browser emulators — runs as actors driven by this engine.
//!
//! Design goals:
//!
//! * **Determinism.** A run is a pure function of its seed and
//!   configuration: one seeded RNG, FIFO tie-breaking in the event queue.
//! * **Faithful failure semantics.** Crashing a node loses its volatile
//!   state and in-flight disk writes but preserves stable storage;
//!   restart bumps an incarnation so stale callbacks never leak across
//!   process lifetimes.
//! * **Costs where the paper says they are.** Consensus progress is
//!   gated on durable log appends; recovery pays a bulk checkpoint read
//!   proportional to state size; messages pay latency plus serialization.
//!
//! ## Example
//!
//! ```
//! use simnet::{Engine, Event, NodeId, SimConfig, SimDuration, SimTime};
//!
//! let mut engine: Engine<String> = Engine::new(3, SimConfig::default(), 1);
//! engine.send(NodeId(0), NodeId(2), "hello".to_string());
//! engine.set_timer(NodeId(1), SimDuration::from_millis(5), 1);
//! let mut seen = 0;
//! while let Some((_, _ev)) = engine.next_event_before(SimTime::from_secs(1)) {
//!     seen += 1;
//! }
//! assert_eq!(seen, 2);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod disk;
mod engine;
mod net;
mod node;
#[doc(hidden)]
pub mod queue;
mod time;

pub use disk::{DiskConfig, DiskModel, StableLog, StableOp, StableStore};
pub use engine::{DiskFault, Engine, Event, SimConfig};
pub use net::{DropReason, LinkFault, NetConfig, Network, Transmission};
pub use node::{Incarnation, NodeId, NodeState, NodeStatus};
pub use time::{SimDuration, SimTime, TickSchedule};

// Re-exported so engine drivers can name trace types without adding a
// direct `obs` dependency.
pub use obs::{TraceConfig, TraceEvent, TraceRecord, Tracer};
