//! Simulated time.
//!
//! The simulator measures time in microseconds since the start of the run.
//! [`SimTime`] is a point in time, [`SimDuration`] a span. Both are cheap
//! `Copy` newtypes so they can be threaded everywhere without thought.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point in simulated time, in microseconds since the start of the run.
///
/// ```
/// use simnet::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_secs(2);
/// assert_eq!(t.as_micros(), 2_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
///
/// ```
/// use simnet::SimDuration;
/// assert_eq!(SimDuration::from_millis(3).as_micros(), 3_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time point from microseconds since the origin.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates a time point from milliseconds since the origin.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates a time point from seconds since the origin.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Microseconds since the origin.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This time point expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is
    /// in this point's future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a span from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a span from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a span from fractional seconds, rounding to the nearest
    /// microsecond. Negative inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            SimDuration(0)
        } else {
            SimDuration((s * 1e6).round() as u64)
        }
    }

    /// The span in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The span in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The span in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns whether this span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction of spans.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

/// A deterministic fixed-interval sequence of simulated instants in
/// `[start, end]` — the scheduling primitive for periodic in-sim work
/// that must not perturb the event stream (the caller bounds the
/// engine's dispatch at [`TickSchedule::next_due`] and performs the
/// tick itself when the engine goes idle at that instant).
///
/// ```
/// use simnet::{SimTime, SimDuration, TickSchedule};
/// let mut ticks = TickSchedule::new(
///     SimTime::from_secs(1),
///     SimDuration::from_secs(2),
///     SimTime::from_secs(5),
/// );
/// assert_eq!(ticks.next_due(), Some(SimTime::from_secs(1)));
/// ticks.advance();
/// ticks.advance();
/// assert_eq!(ticks.next_due(), Some(SimTime::from_secs(5)));
/// ticks.advance();
/// assert_eq!(ticks.next_due(), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TickSchedule {
    next: SimTime,
    interval: SimDuration,
    end: SimTime,
}

impl TickSchedule {
    /// A schedule ticking at `start`, `start + interval`, … up to and
    /// including `end`. A zero interval is clamped to one microsecond
    /// so the schedule always terminates.
    pub fn new(start: SimTime, interval: SimDuration, end: SimTime) -> TickSchedule {
        let interval = if interval.is_zero() {
            SimDuration::from_micros(1)
        } else {
            interval
        };
        TickSchedule {
            next: start,
            interval,
            end,
        }
    }

    /// The next tick instant, or `None` once the schedule is spent.
    pub fn next_due(&self) -> Option<SimTime> {
        if self.next <= self.end {
            Some(self.next)
        } else {
            None
        }
    }

    /// Consumes the current tick, returning the instant it was due.
    pub fn advance(&mut self) -> Option<SimTime> {
        let due = self.next_due()?;
        self.next += self.interval;
        Some(due)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_secs(3) + SimDuration::from_millis(500);
        assert_eq!(t.as_micros(), 3_500_000);
        assert_eq!(t - SimTime::from_secs(3), SimDuration::from_millis(500));
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
    }

    #[test]
    fn from_secs_f64_rounds_and_clamps() {
        assert_eq!(SimDuration::from_secs_f64(0.0000015).as_micros(), 2);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(1));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    fn display_is_seconds() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
        assert_eq!(SimDuration::from_micros(250).to_string(), "0.000250s");
    }

    #[test]
    fn ordering_follows_micros() {
        assert!(SimTime::from_micros(5) < SimTime::from_micros(6));
        assert!(SimDuration::from_millis(2) > SimDuration::from_micros(1999));
    }

    #[test]
    fn scalar_mul_div() {
        assert_eq!(SimDuration::from_millis(2) * 3, SimDuration::from_millis(6));
        assert_eq!(SimDuration::from_millis(6) / 3, SimDuration::from_millis(2));
    }

    #[test]
    fn tick_schedule_covers_inclusive_range() {
        let mut ticks = TickSchedule::new(
            SimTime::from_secs(2),
            SimDuration::from_secs(3),
            SimTime::from_secs(8),
        );
        let mut seen = Vec::new();
        while let Some(t) = ticks.advance() {
            seen.push(t.as_micros());
        }
        assert_eq!(seen, [2_000_000, 5_000_000, 8_000_000]);
        assert_eq!(ticks.next_due(), None);
        assert_eq!(ticks.advance(), None);
    }

    #[test]
    fn tick_schedule_clamps_zero_interval() {
        let mut ticks =
            TickSchedule::new(SimTime::ZERO, SimDuration::ZERO, SimTime::from_micros(2));
        assert_eq!(ticks.advance(), Some(SimTime::from_micros(0)));
        assert_eq!(ticks.advance(), Some(SimTime::from_micros(1)));
        assert_eq!(ticks.advance(), Some(SimTime::from_micros(2)));
        assert_eq!(ticks.advance(), None);
    }

    #[test]
    fn tick_schedule_can_be_born_spent() {
        let ticks = TickSchedule::new(
            SimTime::from_secs(9),
            SimDuration::from_secs(1),
            SimTime::from_secs(3),
        );
        assert_eq!(ticks.next_due(), None);
    }
}
