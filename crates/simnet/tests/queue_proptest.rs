//! Differential property tests pinning the calendar-queue event wheel
//! to the reference binary heap: for any interleaving of pushes, bounded
//! pops, and retains, both queues must produce the *identical* sequence
//! of `(at, seq, item)` pops and agree on length at every step. This is
//! the guarantee that lets the engine swap queues without perturbing a
//! single same-seed trace.

use proptest::prelude::*;

use simnet::queue::{EventWheel, HeapQueue};

/// One scripted operation against both queues.
#[derive(Debug, Clone)]
enum Op {
    /// Push at `now + delta` (keeps times loosely monotone, like the
    /// engine, while still exercising ties and far-future overflow).
    Push { delta: u64 },
    /// Pop everything at or before `now + window`, advancing `now` to
    /// each popped timestamp as the engine would.
    PopBefore { window: u64 },
    /// Drop every item whose payload is congruent to `kill` mod 4 —
    /// the shape of the engine's crash-time incarnation purge.
    Retain { kill: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        // Mostly near-term pushes (ties included), some far overflow.
        6 => (0u64..5_000).prop_map(|delta| Op::Push { delta }),
        1 => (2_000_000u64..50_000_000).prop_map(|delta| Op::Push { delta }),
        3 => (0u64..20_000).prop_map(|window| Op::PopBefore { window }),
        // Occasional huge windows drive the cursor far ahead, making
        // previously-parked overflow entries stale — the interleaving
        // that once reordered pops (see stale_overflow_entry_pops_in_
        // global_order in queue.rs).
        1 => (1_000_000u64..20_000_000).prop_map(|window| Op::PopBefore { window }),
        1 => (0u64..4).prop_map(|kill| Op::Retain { kill }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The wheel and the reference heap agree on every pop and every
    /// length, under any mix of pushes, bounded pops, and retains.
    #[test]
    fn wheel_matches_reference_heap(
        ops in proptest::collection::vec(op_strategy(), 1..200),
    ) {
        let mut wheel: EventWheel<u64> = EventWheel::new();
        let mut heap: HeapQueue<u64> = HeapQueue::new();
        let mut now = 0u64;
        let mut seq = 0u64;
        let mut payload = 0u64;

        for op in &ops {
            match *op {
                Op::Push { delta } => {
                    let at = now + delta;
                    wheel.push(at, seq, payload);
                    heap.push(at, seq, payload);
                    seq += 1;
                    payload += 1;
                }
                Op::PopBefore { window } => {
                    let limit = now + window;
                    loop {
                        let a = wheel.pop_before(limit);
                        let b = heap.pop_before(limit);
                        prop_assert_eq!(a, b, "pop divergence at limit {}", limit);
                        match a {
                            Some((at, _, _)) => now = now.max(at),
                            None => break,
                        }
                    }
                    now = limit;
                }
                Op::Retain { kill } => {
                    wheel.retain(|v| v % 4 != kill);
                    heap.retain(|v| v % 4 != kill);
                }
            }
            prop_assert_eq!(wheel.len(), heap.len(), "length divergence");
        }

        // Final drain: both must empty in the same order.
        loop {
            let a = wheel.pop_before(u64::MAX);
            let b = heap.pop_before(u64::MAX);
            prop_assert_eq!(a, b, "drain divergence");
            if a.is_none() {
                break;
            }
        }
        prop_assert!(wheel.is_empty());
        prop_assert!(heap.is_empty());
    }

    /// FIFO ties: pushes at the identical timestamp pop in push order
    /// on both queues, regardless of how the batch is interleaved with
    /// other work.
    #[test]
    fn equal_timestamps_pop_in_push_order(
        at in 0u64..1_000_000,
        n in 2usize..40,
    ) {
        let mut wheel: EventWheel<usize> = EventWheel::new();
        for i in 0..n {
            wheel.push(at, i as u64, i);
        }
        let mut popped = Vec::new();
        while let Some((_, _, v)) = wheel.pop_before(u64::MAX) {
            popped.push(v);
        }
        prop_assert_eq!(popped, (0..n).collect::<Vec<_>>());
    }
}
