//! The in-memory bookstore: the database functionality behind the 14
//! web interactions.
//!
//! RobustStore replaces TPC-W's relational database with an object
//! model (paper §4): the methods here "represent all the database
//! functionality required by the bookstore". The store is split into an
//! immutable, regenerable [`BasePopulation`] (shared by every replica
//! via `Arc`) and a mutable [`Overlay`] holding everything the workload
//! changes — carts, new customers/orders, stock and item updates. A
//! checkpoint serializes only the parameters plus the overlay, and
//! restore regenerates the base and replays the overlay, which keeps
//! simulated checkpoints cheap while the *modeled* checkpoint size
//! tracks the paper's 300–700 MB states.
//!
//! Every mutating method takes its timestamps/random values as
//! arguments: determinism is the caller's job (the `robuststore` facade
//! samples them before building actions — the paper's task II).

use std::collections::BTreeMap;
use std::sync::Arc;

use treplica::{impl_wire_struct, Wire, WireError};

use crate::model::{
    nominal, Cart, CartId, CartLine, CcXact, Customer, CustomerId, Item, ItemId, Order, OrderId,
    OrderLine, OrderStatus, SUBJECTS,
};
use crate::population::{base_population, c_uname, BasePopulation, PopulationParams};

/// Fields of a new-customer registration supplied by the web tier
/// (timestamps and discount pre-sampled for determinism).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NewCustomer {
    /// First name.
    pub fname: String,
    /// Last name.
    pub lname: String,
    /// Phone.
    pub phone: String,
    /// Email.
    pub email: String,
    /// Birthdate (days since epoch).
    pub birthdate: u32,
    /// Free-form data.
    pub data: String,
    /// Registration discount in basis points — *pre-sampled* by the
    /// caller (the paper's example of removed non-determinism).
    pub discount_bp: u32,
    /// Registration timestamp (µs) — pre-sampled.
    pub now: u64,
}
impl_wire_struct!(NewCustomer {
    fname,
    lname,
    phone,
    email,
    birthdate,
    data,
    discount_bp,
    now
});

/// Payment details for a purchase.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Payment {
    /// Card type.
    pub cc_type: String,
    /// Card number.
    pub cc_num: String,
    /// Cardholder.
    pub cc_name: String,
    /// Expiry (days since epoch).
    pub cc_expiry: u32,
    /// Authorization id returned by the emulated payment gateway —
    /// pre-sampled (in the original it came from an external call).
    pub auth_id: String,
    /// Issuing country.
    pub country: u32,
}
impl_wire_struct!(Payment {
    cc_type,
    cc_num,
    cc_name,
    cc_expiry,
    auth_id,
    country
});

/// The mutable part of the store (everything the workload changes).
///
/// The maps are `BTreeMap` so the overlay — which is replicated state
/// and feeds the checkpoint encoding below — iterates in key order by
/// construction; the encoder needs no sorting pass and two overlays
/// that are `==` always encode to identical bytes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Overlay {
    /// Live shopping carts.
    pub carts: BTreeMap<u32, Cart>,
    /// Next cart id.
    pub next_cart: u32,
    /// Customers registered during the run (id ≥ base count).
    pub new_customers: Vec<Customer>,
    /// Orders placed during the run (id ≥ base count).
    pub new_orders: Vec<Order>,
    /// Lines of the new orders (parallel to `new_orders`).
    pub new_order_lines: Vec<Vec<OrderLine>>,
    /// Credit-card transactions of the new orders (parallel).
    pub new_cc_xacts: Vec<CcXact>,
    /// Current stock where it differs from the base.
    pub stock: BTreeMap<u32, i32>,
    /// Admin item updates: id → (cost, image, thumbnail).
    pub item_updates: BTreeMap<u32, (u64, String, String)>,
    /// Session refreshes: customer id → (login, expiration).
    pub sessions: BTreeMap<u32, (u64, u64)>,
    /// Most recent order per customer (covers base + new orders).
    pub last_order: BTreeMap<u32, u32>,
}

/// Encoded form of one item update: `(item, (cost, (image, thumbnail)))`.
type ItemUpdateWire = (u32, (u64, (String, String)));

impl Wire for Overlay {
    fn encode(&self, buf: &mut Vec<u8>) {
        // BTreeMap iteration is already key-ordered, so the encoded
        // form is canonical without a sorting pass.
        let carts: Vec<(u32, Cart)> = self.carts.iter().map(|(k, c)| (*k, c.clone())).collect();
        carts.encode(buf);
        self.next_cart.encode(buf);
        self.new_customers.encode(buf);
        self.new_orders.encode(buf);
        self.new_order_lines.encode(buf);
        self.new_cc_xacts.encode(buf);
        let stock: Vec<(u32, i32)> = self.stock.iter().map(|(k, v)| (*k, *v)).collect();
        stock.encode(buf);
        let updates: Vec<ItemUpdateWire> = self
            .item_updates
            .iter()
            .map(|(k, (c, i, t))| (*k, (*c, (i.clone(), t.clone()))))
            .collect();
        updates.encode(buf);
        let sessions: Vec<(u32, (u64, u64))> =
            self.sessions.iter().map(|(k, v)| (*k, *v)).collect();
        sessions.encode(buf);
        let last: Vec<(u32, u32)> = self.last_order.iter().map(|(k, v)| (*k, *v)).collect();
        last.encode(buf);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let carts_v: Vec<(u32, Cart)> = Vec::decode(input)?;
        let next_cart = u32::decode(input)?;
        let new_customers = Vec::decode(input)?;
        let new_orders = Vec::decode(input)?;
        let new_order_lines = Vec::decode(input)?;
        let new_cc_xacts = Vec::decode(input)?;
        let stock_v: Vec<(u32, i32)> = Vec::decode(input)?;
        let updates_v: Vec<ItemUpdateWire> = Vec::decode(input)?;
        let sessions_v: Vec<(u32, (u64, u64))> = Vec::decode(input)?;
        let last_v: Vec<(u32, u32)> = Vec::decode(input)?;
        Ok(Overlay {
            carts: carts_v.into_iter().collect(),
            next_cart,
            new_customers,
            new_orders,
            new_order_lines,
            new_cc_xacts,
            stock: stock_v.into_iter().collect(),
            item_updates: updates_v
                .into_iter()
                .map(|(k, (c, (i, t)))| (k, (c, i, t)))
                .collect(),
            sessions: sessions_v.into_iter().collect(),
            last_order: last_v.into_iter().collect(),
        })
    }
}

/// Errors from bookstore operations (malformed requests surface to the
/// client as HTTP errors, not replica failures).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreError {
    /// Unknown cart id.
    NoSuchCart,
    /// Unknown customer.
    NoSuchCustomer,
    /// Unknown item.
    NoSuchItem,
    /// Buy confirm on an empty cart.
    EmptyCart,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::NoSuchCart => write!(f, "no such cart"),
            StoreError::NoSuchCustomer => write!(f, "no such customer"),
            StoreError::NoSuchItem => write!(f, "no such item"),
            StoreError::EmptyCart => write!(f, "cart is empty"),
        }
    }
}

impl std::error::Error for StoreError {}

/// The bookstore: shared immutable base + per-replica overlay.
///
/// ```
/// use tpcw::{Bookstore, ItemId, PopulationParams};
/// let params = PopulationParams { items: 100, ebs: 1, seed: 1 };
/// let mut store = Bookstore::open(params);
/// let cart = store.do_cart(None, Some((ItemId(3), 2)), &[], ItemId(0), 1_000)?;
/// assert_eq!(store.cart(cart)?.units(), 2);
/// # Ok::<(), tpcw::StoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Bookstore {
    base: Arc<BasePopulation>,
    overlay: Overlay,
}

impl PartialEq for Bookstore {
    fn eq(&self, other: &Self) -> bool {
        self.base.params == other.base.params && self.overlay == other.overlay
    }
}

impl Bookstore {
    /// Opens the bookstore over the (memoized) population for `params`.
    pub fn open(params: PopulationParams) -> Bookstore {
        Bookstore {
            base: base_population(params),
            overlay: Overlay::default(),
        }
    }

    /// The population parameters.
    pub fn params(&self) -> PopulationParams {
        self.base.params
    }

    /// Direct access to the overlay (checkpointing).
    pub fn overlay(&self) -> &Overlay {
        &self.overlay
    }

    /// Rebuilds a bookstore from parameters and an overlay (restore).
    pub fn from_parts(params: PopulationParams, overlay: Overlay) -> Bookstore {
        Bookstore {
            base: base_population(params),
            overlay,
        }
    }

    /// The modeled in-memory size: base population plus workload growth.
    pub fn nominal_bytes(&self) -> u64 {
        let o = &self.overlay;
        let new_lines: u64 = o.new_order_lines.iter().map(|l| l.len() as u64).sum();
        let cart_lines: u64 = o.carts.values().map(|c| c.lines.len() as u64).sum();
        self.base.nominal_bytes()
            + o.new_customers.len() as u64 * (nominal::CUSTOMER + nominal::ADDRESS)
            + o.new_orders.len() as u64
                * (nominal::ORDER + nominal::CC_XACT + nominal::ORDER_SESSION_OVERHEAD)
            + new_lines * nominal::ORDER_LINE
            + o.carts.len() as u64 * nominal::CART
            + cart_lines * nominal::ORDER_LINE
    }

    // ----- lookups spanning base + overlay -------------------------------

    fn total_customers(&self) -> u32 {
        self.base.params.customers() + self.overlay.new_customers.len() as u32
    }

    fn total_orders(&self) -> u32 {
        self.base.params.orders() + self.overlay.new_orders.len() as u32
    }

    /// Fetches a customer (base or registered during the run).
    pub fn customer(&self, id: CustomerId) -> Result<&Customer, StoreError> {
        let base_n = self.base.params.customers();
        if id.0 < base_n {
            self.base
                .customers
                .get(id.0 as usize)
                .ok_or(StoreError::NoSuchCustomer)
        } else {
            self.overlay
                .new_customers
                .get((id.0 - base_n) as usize)
                .ok_or(StoreError::NoSuchCustomer)
        }
    }

    /// Looks a customer up by user name.
    pub fn customer_by_uname(&self, uname: &str) -> Result<&Customer, StoreError> {
        if let Some(id) = self.base.by_uname.get(uname) {
            return self.customer(*id);
        }
        self.overlay
            .new_customers
            .iter()
            .find(|c| c.uname == uname)
            .ok_or(StoreError::NoSuchCustomer)
    }

    /// Fetches an item with any admin updates applied.
    pub fn item(&self, id: ItemId) -> Result<Item, StoreError> {
        let mut item = self
            .base
            .items
            .get(id.0 as usize)
            .cloned()
            .ok_or(StoreError::NoSuchItem)?;
        if let Some((cost, image, thumb)) = self.overlay.item_updates.get(&id.0) {
            item.cost_cents = *cost;
            item.image = image.clone();
            item.thumbnail = thumb.clone();
        }
        if let Some(stock) = self.overlay.stock.get(&id.0) {
            item.stock = *stock;
        }
        Ok(item)
    }

    /// Current cost of an item in cents.
    pub fn item_cost(&self, id: ItemId) -> Result<u64, StoreError> {
        match self.overlay.item_updates.get(&id.0) {
            Some((cost, _, _)) => Ok(*cost),
            None => self
                .base
                .items
                .get(id.0 as usize)
                .map(|i| i.cost_cents)
                .ok_or(StoreError::NoSuchItem),
        }
    }

    /// Current stock of an item.
    pub fn stock(&self, id: ItemId) -> Result<i32, StoreError> {
        match self.overlay.stock.get(&id.0) {
            Some(s) => Ok(*s),
            None => self
                .base
                .items
                .get(id.0 as usize)
                .map(|i| i.stock)
                .ok_or(StoreError::NoSuchItem),
        }
    }

    /// An order with its lines and payment record.
    pub fn order(&self, id: OrderId) -> Option<(&Order, &[OrderLine], &CcXact)> {
        let base_n = self.base.params.orders();
        if id.0 < base_n {
            let i = id.0 as usize;
            Some((
                &self.base.orders[i],
                &self.base.order_lines[i],
                &self.base.cc_xacts[i],
            ))
        } else {
            let i = (id.0 - base_n) as usize;
            Some((
                self.overlay.new_orders.get(i)?,
                self.overlay.new_order_lines.get(i)?,
                self.overlay.new_cc_xacts.get(i)?,
            ))
        }
    }

    // ----- the 14 interactions' read paths -------------------------------

    /// Home page: customer greeting + promotional items.
    pub fn get_home(&self, c_id: Option<CustomerId>) -> (Option<String>, Vec<ItemId>) {
        let name = c_id
            .and_then(|id| self.customer(id).ok())
            .map(|c| format!("{} {}", c.fname, c.lname));
        let promos = (0..5)
            .map(|k| ItemId((k * 37) % self.base.params.items))
            .collect();
        (name, promos)
    }

    /// New Products: the 50 newest items of a subject.
    pub fn get_new_products(&self, subject: u8) -> Vec<ItemId> {
        let ids = &self.base.by_subject[subject as usize % SUBJECTS.len()];
        let mut v: Vec<ItemId> = ids.clone();
        v.sort_by_key(|id| std::cmp::Reverse(self.base.items[id.0 as usize].pub_date));
        v.truncate(50);
        v
    }

    /// Best Sellers: top-50 items by quantity over the 3333 most recent
    /// orders, restricted to a subject (TPC-W clause 2.7).
    pub fn get_best_sellers(&self, subject: u8) -> Vec<(ItemId, u64)> {
        let subject = subject as usize % SUBJECTS.len();
        let mut qty: BTreeMap<ItemId, u64> = BTreeMap::new();
        let recent = 3_333usize;
        // Walk new orders newest-first, then base orders.
        let mut seen = 0usize;
        for lines in self.overlay.new_order_lines.iter().rev() {
            if seen >= recent {
                break;
            }
            seen += 1;
            for l in lines {
                *qty.entry(l.item).or_default() += l.qty as u64;
            }
        }
        for lines in self.base.order_lines.iter().rev() {
            if seen >= recent {
                break;
            }
            seen += 1;
            for l in lines {
                *qty.entry(l.item).or_default() += l.qty as u64;
            }
        }
        let mut v: Vec<(ItemId, u64)> = qty
            .into_iter()
            .filter(|(id, _)| {
                self.base
                    .items
                    .get(id.0 as usize)
                    .is_some_and(|it| it.subject as usize == subject)
            })
            .collect();
        v.sort_by_key(|(id, q)| (std::cmp::Reverse(*q), *id));
        v.truncate(50);
        v
    }

    /// Search by subject: first 50 items of the subject by title.
    pub fn search_by_subject(&self, subject: u8) -> Vec<ItemId> {
        let ids = &self.base.by_subject[subject as usize % SUBJECTS.len()];
        let mut v = ids.clone();
        v.sort_by(|a, b| {
            self.base.items[a.0 as usize]
                .title
                .cmp(&self.base.items[b.0 as usize].title)
        });
        v.truncate(50);
        v
    }

    /// Search by title substring.
    pub fn search_by_title(&self, term: &str) -> Vec<ItemId> {
        self.base
            .items
            .iter()
            .filter(|i| i.title.contains(term))
            .take(50)
            .map(|i| i.id)
            .collect()
    }

    /// Search by author last-name substring.
    pub fn search_by_author(&self, term: &str) -> Vec<ItemId> {
        self.base
            .items
            .iter()
            .filter(|i| self.base.authors[i.author.0 as usize].lname.contains(term))
            .take(50)
            .map(|i| i.id)
            .collect()
    }

    /// The customer's most recent order, if any.
    pub fn most_recent_order(&self, uname: &str) -> Result<Option<OrderId>, StoreError> {
        let c = self.customer_by_uname(uname)?;
        if let Some(o) = self.overlay.last_order.get(&c.id.0) {
            return Ok(Some(OrderId(*o)));
        }
        // Scan the base orders (newest last id wins; base has no index).
        let found = self
            .base
            .orders
            .iter()
            .rev()
            .find(|o| o.customer == c.id)
            .map(|o| o.id);
        Ok(found)
    }

    /// Fetches a cart.
    pub fn cart(&self, id: CartId) -> Result<&Cart, StoreError> {
        self.overlay.carts.get(&id.0).ok_or(StoreError::NoSuchCart)
    }

    // ----- update paths (deterministic; used by replicated actions) ------

    /// Creates an empty cart, returning its id.
    pub fn create_cart(&mut self, now: u64) -> CartId {
        let id = CartId(self.overlay.next_cart);
        self.overlay.next_cart += 1;
        self.overlay.carts.insert(
            id.0,
            Cart {
                id,
                time: now,
                lines: Vec::new(),
            },
        );
        id
    }

    /// Shopping-cart interaction: optionally creates the cart, applies
    /// the line updates, and adds `default_item` if the cart would end
    /// up empty (TPC-W clause 2.4.5; the random default item is sampled
    /// by the caller). Returns the cart id.
    pub fn do_cart(
        &mut self,
        cart_id: Option<CartId>,
        add: Option<(ItemId, u32)>,
        updates: &[CartLine],
        default_item: ItemId,
        now: u64,
    ) -> Result<CartId, StoreError> {
        let id = match cart_id {
            Some(id) if self.overlay.carts.contains_key(&id.0) => id,
            Some(_) => return Err(StoreError::NoSuchCart),
            None => self.create_cart(now),
        };
        let Some(cart) = self.overlay.carts.get_mut(&id.0) else {
            return Err(StoreError::NoSuchCart);
        };
        if let Some((item, qty)) = add {
            cart.update(item, qty.max(1));
        }
        for u in updates {
            cart.update(u.item, u.qty);
        }
        if cart.lines.is_empty() {
            cart.update(default_item, 1);
        }
        cart.time = now;
        Ok(id)
    }

    /// Registers a new customer with a fresh address (TPC-W's customer
    /// registration creates both). Returns the id.
    pub fn create_customer(&mut self, reg: &NewCustomer) -> CustomerId {
        let id = CustomerId(self.total_customers());
        let uname = c_uname(id);
        self.overlay.new_customers.push(Customer {
            id,
            passwd: uname.to_lowercase(),
            uname,
            fname: reg.fname.clone(),
            lname: reg.lname.clone(),
            addr: crate::model::AddressId(0),
            phone: reg.phone.clone(),
            email: reg.email.clone(),
            since: (reg.now / 86_400_000_000) as u32,
            last_login: reg.now,
            login: reg.now,
            expiration: reg.now + 7_200_000_000,
            discount_bp: reg.discount_bp,
            balance_cents: 0,
            ytd_pmt_cents: 0,
            birthdate: reg.birthdate,
            data: reg.data.clone(),
        });
        id
    }

    /// Refreshes a customer session (Buy Request path).
    pub fn refresh_session(&mut self, c_id: CustomerId, now: u64) -> Result<(), StoreError> {
        self.customer(c_id)?;
        self.overlay
            .sessions
            .insert(c_id.0, (now, now + 7_200_000_000));
        Ok(())
    }

    /// Buy Confirm: turns a cart into an order + lines + payment record,
    /// adjusts stock (replenishing +21 when it would drop below 10, per
    /// TPC-W clause 2.10), clears the cart. Returns the order id.
    pub fn buy_confirm(
        &mut self,
        cart_id: CartId,
        c_id: CustomerId,
        payment: &Payment,
        ship_type: u8,
        now: u64,
    ) -> Result<OrderId, StoreError> {
        let discount_bp = self.customer(c_id)?.discount_bp;
        let cart = self
            .overlay
            .carts
            .get(&cart_id.0)
            .ok_or(StoreError::NoSuchCart)?
            .clone();
        if cart.lines.is_empty() {
            return Err(StoreError::EmptyCart);
        }
        let mut subtotal = 0u64;
        for l in &cart.lines {
            subtotal += self.item_cost(l.item)? * l.qty as u64;
        }
        let subtotal = subtotal * (10_000 - discount_bp as u64) / 10_000;
        let tax = subtotal * 825 / 10_000;
        let total = subtotal + tax + 300 + 100 * cart.lines.len() as u64;

        let order_id = OrderId(self.total_orders());
        let customer_addr = self.customer(c_id)?.addr;
        let order = Order {
            id: order_id,
            customer: c_id,
            date: now,
            subtotal_cents: subtotal,
            tax_cents: tax,
            total_cents: total,
            ship_type: ship_type % 6,
            ship_date: (now / 86_400_000_000) as u32 + 1 + (ship_type as u32 % 7),
            bill_addr: customer_addr,
            ship_addr: customer_addr,
            status: OrderStatus::Pending,
        };
        let lines: Vec<OrderLine> = cart
            .lines
            .iter()
            .map(|l| OrderLine {
                order: order_id,
                item: l.item,
                qty: l.qty,
                discount_bp,
                comments: String::new(),
            })
            .collect();
        // Stock adjustment per spec.
        for l in &cart.lines {
            let current = self.stock(l.item)?;
            let after = current - l.qty as i32;
            let after = if after < 10 { after + 21 } else { after };
            self.overlay.stock.insert(l.item.0, after);
        }
        self.overlay.new_cc_xacts.push(CcXact {
            order: order_id,
            cc_type: payment.cc_type.clone(),
            cc_num: payment.cc_num.clone(),
            cc_name: payment.cc_name.clone(),
            cc_expiry: payment.cc_expiry,
            auth_id: payment.auth_id.clone(),
            amount_cents: total,
            date: now,
            country: crate::model::CountryId(payment.country % 92),
        });
        self.overlay.new_orders.push(order);
        self.overlay.new_order_lines.push(lines);
        self.overlay.last_order.insert(c_id.0, order_id.0);
        self.overlay.carts.remove(&cart_id.0);
        Ok(order_id)
    }

    /// Admin Confirm: updates an item's cost/images and refreshes its
    /// related list from current best sellers of its subject.
    pub fn admin_update(
        &mut self,
        item: ItemId,
        cost_cents: u64,
        image: String,
        thumbnail: String,
    ) -> Result<(), StoreError> {
        let subject = self
            .base
            .items
            .get(item.0 as usize)
            .ok_or(StoreError::NoSuchItem)?
            .subject;
        let _refresh = self.get_best_sellers(subject);
        self.overlay
            .item_updates
            .insert(item.0, (cost_cents, image, thumbnail));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> Bookstore {
        Bookstore::open(PopulationParams {
            items: 200,
            ebs: 1,
            seed: 7,
        })
    }

    fn payment() -> Payment {
        Payment {
            cc_type: "VISA".into(),
            cc_num: "4111111111111111".into(),
            cc_name: "Test Buyer".into(),
            cc_expiry: 15_000,
            auth_id: "AUTH123".into(),
            country: 1,
        }
    }

    #[test]
    fn cart_lifecycle() {
        let mut s = store();
        let id = s
            .do_cart(None, Some((ItemId(3), 2)), &[], ItemId(0), 1_000)
            .unwrap();
        assert_eq!(s.cart(id).unwrap().units(), 2);
        // Update quantity and add another line.
        s.do_cart(
            Some(id),
            Some((ItemId(4), 1)),
            &[CartLine {
                item: ItemId(3),
                qty: 5,
            }],
            ItemId(0),
            2_000,
        )
        .unwrap();
        assert_eq!(s.cart(id).unwrap().units(), 6);
        // Removing everything re-adds the default item.
        s.do_cart(
            Some(id),
            None,
            &[
                CartLine {
                    item: ItemId(3),
                    qty: 0,
                },
                CartLine {
                    item: ItemId(4),
                    qty: 0,
                },
            ],
            ItemId(9),
            3_000,
        )
        .unwrap();
        let cart = s.cart(id).unwrap();
        assert_eq!(cart.lines.len(), 1);
        assert_eq!(cart.lines[0].item, ItemId(9));
    }

    #[test]
    fn unknown_cart_errors() {
        let mut s = store();
        assert_eq!(
            s.do_cart(Some(CartId(99)), None, &[], ItemId(0), 0),
            Err(StoreError::NoSuchCart)
        );
        assert_eq!(s.cart(CartId(99)).unwrap_err(), StoreError::NoSuchCart);
    }

    #[test]
    fn buy_confirm_creates_order_and_adjusts_stock() {
        let mut s = store();
        let cart = s
            .do_cart(None, Some((ItemId(3), 2)), &[], ItemId(0), 1_000)
            .unwrap();
        let stock_before = s.stock(ItemId(3)).unwrap();
        let oid = s
            .buy_confirm(cart, CustomerId(5), &payment(), 1, 5_000)
            .unwrap();
        let (order, lines, cc) = s.order(oid).unwrap();
        assert_eq!(order.customer, CustomerId(5));
        assert_eq!(order.date, 5_000);
        assert_eq!(lines.len(), 1);
        assert_eq!(cc.auth_id, "AUTH123");
        assert!(order.total_cents > order.subtotal_cents);
        // Stock decremented (or replenished if it crossed the floor).
        let stock_after = s.stock(ItemId(3)).unwrap();
        assert!(stock_after == stock_before - 2 || stock_after == stock_before - 2 + 21);
        // Cart consumed.
        assert!(s.cart(cart).is_err());
        // Most-recent-order index updated.
        let uname = s.customer(CustomerId(5)).unwrap().uname.clone();
        assert_eq!(s.most_recent_order(&uname).unwrap(), Some(oid));
    }

    #[test]
    fn buy_confirm_empty_cart_rejected() {
        let mut s = store();
        let cart = s.create_cart(0);
        assert_eq!(
            s.buy_confirm(cart, CustomerId(0), &payment(), 0, 0),
            Err(StoreError::EmptyCart)
        );
    }

    #[test]
    fn stock_replenishes_below_floor() {
        let mut s = store();
        // Drain stock of an item with repeated purchases.
        let item = ItemId(10);
        for round in 0..20u64 {
            let cart = s
                .do_cart(None, Some((item, 4)), &[], ItemId(0), round)
                .unwrap();
            s.buy_confirm(cart, CustomerId(1), &payment(), 0, round)
                .unwrap();
            let stock = s.stock(item).unwrap();
            assert!(stock >= 6, "stock must replenish, got {stock}");
        }
    }

    #[test]
    fn customer_registration_and_lookup() {
        let mut s = store();
        let reg = NewCustomer {
            fname: "Ada".into(),
            lname: "Lovelace".into(),
            phone: "5551234567".into(),
            email: "ada@example.com".into(),
            birthdate: 4_000,
            data: "x".into(),
            discount_bp: 250,
            now: 9_000,
        };
        let id = s.create_customer(&reg);
        assert_eq!(id.0, s.params().customers());
        let c = s.customer(id).unwrap();
        assert_eq!(c.fname, "Ada");
        assert_eq!(c.discount_bp, 250);
        let found = s.customer_by_uname(&c.uname.clone()).unwrap();
        assert_eq!(found.id, id);
    }

    #[test]
    fn searches_bounded_to_50() {
        let s = store();
        for subj in 0..24u8 {
            assert!(s.search_by_subject(subj).len() <= 50);
            assert!(s.get_new_products(subj).len() <= 50);
            assert!(s.get_best_sellers(subj).len() <= 50);
        }
        assert!(s.search_by_title("a").len() <= 50);
        assert!(s.search_by_author("a").len() <= 50);
    }

    #[test]
    fn new_products_sorted_newest_first() {
        let s = store();
        let v = s.get_new_products(2);
        for w in v.windows(2) {
            let a = s.item(w[0]).unwrap().pub_date;
            let b = s.item(w[1]).unwrap().pub_date;
            assert!(a >= b);
        }
    }

    #[test]
    fn best_sellers_reflect_new_orders() {
        let mut s = store();
        // Buy a specific item many times; it must enter its subject's
        // best-seller list.
        let item = ItemId(42);
        let subject = s.item(item).unwrap().subject;
        for round in 0..30u64 {
            let cart = s
                .do_cart(None, Some((item, 4)), &[], ItemId(0), round)
                .unwrap();
            s.buy_confirm(cart, CustomerId(2), &payment(), 0, round)
                .unwrap();
        }
        let best = s.get_best_sellers(subject);
        assert!(
            best.iter().any(|(id, _)| *id == item),
            "heavily bought item missing from best sellers"
        );
    }

    #[test]
    fn admin_update_changes_item() {
        let mut s = store();
        s.admin_update(ItemId(7), 1234, "new.gif".into(), "new_t.gif".into())
            .unwrap();
        let item = s.item(ItemId(7)).unwrap();
        assert_eq!(item.cost_cents, 1234);
        assert_eq!(item.image, "new.gif");
        assert_eq!(s.item_cost(ItemId(7)).unwrap(), 1234);
    }

    #[test]
    fn overlay_roundtrips_through_wire() {
        let mut s = store();
        let cart = s
            .do_cart(None, Some((ItemId(3), 2)), &[], ItemId(0), 1_000)
            .unwrap();
        s.buy_confirm(cart, CustomerId(5), &payment(), 1, 5_000)
            .unwrap();
        s.do_cart(None, Some((ItemId(8), 1)), &[], ItemId(0), 6_000)
            .unwrap();
        s.admin_update(ItemId(7), 99, "i".into(), "t".into())
            .unwrap();
        let bytes = s.overlay().to_bytes();
        let decoded = Overlay::from_bytes(&bytes).unwrap();
        assert_eq!(&decoded, s.overlay());
        // Full store reconstruction matches.
        let s2 = Bookstore::from_parts(s.params(), decoded);
        assert_eq!(s2, s);
    }

    #[test]
    fn nominal_bytes_grow_with_orders() {
        let mut s = store();
        let before = s.nominal_bytes();
        let cart = s
            .do_cart(None, Some((ItemId(3), 2)), &[], ItemId(0), 1_000)
            .unwrap();
        s.buy_confirm(cart, CustomerId(5), &payment(), 1, 5_000)
            .unwrap();
        let after = s.nominal_bytes();
        assert!(after > before + nominal::ORDER, "growth {}", after - before);
    }

    #[test]
    fn home_page_greets_known_customer() {
        let s = store();
        let (name, promos) = s.get_home(Some(CustomerId(3)));
        assert!(name.is_some());
        assert_eq!(promos.len(), 5);
        let (anon, _) = s.get_home(None);
        assert!(anon.is_none());
    }
}
