//! Performance and dependability measurement.
//!
//! TPC-W measures WIPS (web interactions per second) with WIRT (web
//! interaction response time) as the complementary metric, over a
//! ramp-up / measurement-interval / ramp-down schedule (the paper uses
//! 30 s / 9 min / 30 s). The dependability extension (§5.1) adds
//! per-second histograms (Figures 5/7/8), AWIPS over sub-windows with
//! the coefficient of variation (Tables 1/3/5), and accuracy (Tables
//! 2/4/6).

/// Measurement schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Schedule {
    /// Ramp-up length (µs).
    pub ramp_up_us: u64,
    /// Measurement interval length (µs).
    pub interval_us: u64,
    /// Ramp-down length (µs).
    pub ramp_down_us: u64,
}

impl Schedule {
    /// The paper's schedule: 30 s ramp-up, 9 min interval, 30 s ramp-down.
    pub fn paper() -> Schedule {
        Schedule {
            ramp_up_us: 30_000_000,
            interval_us: 540_000_000,
            ramp_down_us: 30_000_000,
        }
    }

    /// A shortened schedule for quick experiment runs (same structure).
    pub fn quick(interval_secs: u64) -> Schedule {
        Schedule {
            ramp_up_us: 30_000_000,
            interval_us: interval_secs * 1_000_000,
            ramp_down_us: 10_000_000,
        }
    }

    /// Start of the measurement interval.
    pub fn measure_start_us(&self) -> u64 {
        self.ramp_up_us
    }

    /// End of the measurement interval.
    pub fn measure_end_us(&self) -> u64 {
        self.ramp_up_us + self.interval_us
    }

    /// Total run length.
    pub fn total_us(&self) -> u64 {
        self.ramp_up_us + self.interval_us + self.ramp_down_us
    }

    /// Whether `t` falls inside the measurement interval.
    pub fn in_interval(&self, t: u64) -> bool {
        t >= self.measure_start_us() && t < self.measure_end_us()
    }
}

/// Per-second completion/error series plus response-time samples.
#[derive(Debug, Clone)]
pub struct Recorder {
    bucket_us: u64,
    completions: Vec<u32>,
    errors: Vec<u32>,
    /// (completion time µs, response time µs, interaction) samples of
    /// successes.
    wirt: Vec<(u64, u32, crate::Interaction)>,
    total_ok: u64,
    total_err: u64,
    err_conn: u64,
    err_served: u64,
}

impl Recorder {
    /// A recorder with one-second buckets covering `total_us`.
    pub fn new(total_us: u64) -> Recorder {
        let buckets = (total_us / 1_000_000 + 2) as usize;
        Recorder {
            bucket_us: 1_000_000,
            completions: vec![0; buckets],
            errors: vec![0; buckets],
            wirt: Vec::new(),
            total_ok: 0,
            total_err: 0,
            err_conn: 0,
            err_served: 0,
        }
    }

    /// Records a successful interaction completing at `t` with response
    /// time `rt_us`.
    pub fn record_ok(&mut self, t: u64, rt_us: u64) {
        self.record_ok_typed(t, rt_us, crate::Interaction::Home);
    }

    /// Records a successful interaction with its type (enables the
    /// TPC-W clause 5.3.1 response-time compliance check and mix
    /// validation).
    pub fn record_ok_typed(&mut self, t: u64, rt_us: u64, interaction: crate::Interaction) {
        let b = (t / self.bucket_us) as usize;
        if b < self.completions.len() {
            self.completions[b] += 1;
        }
        self.total_ok += 1;
        self.wirt
            .push((t, rt_us.min(u32::MAX as u64) as u32, interaction));
    }

    /// Records a failed interaction (connection error) at `t`.
    pub fn record_error(&mut self, t: u64) {
        let b = (t / self.bucket_us) as usize;
        if b < self.errors.len() {
            self.errors[b] += 1;
        }
        self.total_err += 1;
        self.err_conn += 1;
    }

    /// Records a served-but-erroneous page (deterministic business
    /// error) at `t` — counted against accuracy like any error.
    pub fn record_served_error(&mut self, t: u64) {
        let b = (t / self.bucket_us) as usize;
        if b < self.errors.len() {
            self.errors[b] += 1;
        }
        self.total_err += 1;
        self.err_served += 1;
    }

    /// `(connection errors, served error pages)` breakdown.
    pub fn error_breakdown(&self) -> (u64, u64) {
        (self.err_conn, self.err_served)
    }

    /// The per-second WIPS histogram (Figures 5/7/8).
    pub fn wips_series(&self) -> &[u32] {
        &self.completions
    }

    /// The per-second error series.
    pub fn error_series(&self) -> &[u32] {
        &self.errors
    }

    /// Total successful interactions.
    pub fn total_ok(&self) -> u64 {
        self.total_ok
    }

    /// Total failed interactions.
    pub fn total_errors(&self) -> u64 {
        self.total_err
    }

    /// Average WIPS over `[from, to)` µs.
    pub fn awips(&self, from: u64, to: u64) -> f64 {
        let (sum, n) = self.window_stats(from, to);
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Coefficient of variation of the per-second WIPS over `[from, to)`.
    pub fn cv(&self, from: u64, to: u64) -> f64 {
        let b0 = (from / self.bucket_us) as usize;
        let b1 = ((to / self.bucket_us) as usize).min(self.completions.len());
        if b1 <= b0 {
            return 0.0;
        }
        let vals: Vec<f64> = self.completions[b0..b1].iter().map(|c| *c as f64).collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        if mean == 0.0 {
            return 0.0;
        }
        let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64;
        var.sqrt() / mean
    }

    fn window_stats(&self, from: u64, to: u64) -> (f64, usize) {
        let b0 = (from / self.bucket_us) as usize;
        let b1 = ((to / self.bucket_us) as usize).min(self.completions.len());
        if b1 <= b0 {
            return (0.0, 0);
        }
        let sum: u64 = self.completions[b0..b1].iter().map(|c| *c as u64).sum();
        (sum as f64, b1 - b0)
    }

    /// Mean WIRT (µs) over `[from, to)` completion times.
    pub fn mean_wirt(&self, from: u64, to: u64) -> f64 {
        let samples: Vec<u32> = self
            .wirt
            .iter()
            .filter(|(t, _, _)| *t >= from && *t < to)
            .map(|(_, rt, _)| *rt)
            .collect();
        if samples.is_empty() {
            return 0.0;
        }
        samples.iter().map(|r| *r as f64).sum::<f64>() / samples.len() as f64
    }

    /// WIRT percentile (0–100) over `[from, to)`.
    pub fn wirt_percentile(&self, from: u64, to: u64, pct: f64) -> u64 {
        let mut samples: Vec<u32> = self
            .wirt
            .iter()
            .filter(|(t, _, _)| *t >= from && *t < to)
            .map(|(_, rt, _)| *rt)
            .collect();
        if samples.is_empty() {
            return 0;
        }
        samples.sort_unstable();
        let idx = ((pct / 100.0) * (samples.len() - 1) as f64).round() as usize;
        samples[idx.min(samples.len() - 1)] as u64
    }

    /// TPC-W clause 5.3.1: 90 % of each interaction's responses must
    /// complete within its limit. Returns per-interaction
    /// `(interaction, p90 µs, limit µs, compliant)` over `[from, to)`,
    /// skipping interactions with no samples.
    pub fn wirt_compliance(&self, from: u64, to: u64) -> Vec<(crate::Interaction, u64, u64, bool)> {
        let mut out = Vec::new();
        for interaction in crate::ALL_INTERACTIONS {
            let mut samples: Vec<u32> = self
                .wirt
                .iter()
                .filter(|(t, _, i)| *t >= from && *t < to && *i == interaction)
                .map(|(_, rt, _)| *rt)
                .collect();
            if samples.is_empty() {
                continue;
            }
            samples.sort_unstable();
            let idx = ((samples.len() - 1) as f64 * 0.9).round() as usize;
            let p90 = samples[idx] as u64;
            let limit = wirt_limit_us(interaction);
            out.push((interaction, p90, limit, p90 <= limit));
        }
        out
    }

    /// Measured interaction mix over `[from, to)`: fraction of
    /// completions per interaction (mix-validity checks against the
    /// profile's weights).
    pub fn measured_mix(&self, from: u64, to: u64) -> Vec<(crate::Interaction, f64)> {
        let total = self
            .wirt
            .iter()
            .filter(|(t, _, _)| *t >= from && *t < to)
            .count();
        if total == 0 {
            return Vec::new();
        }
        crate::ALL_INTERACTIONS
            .iter()
            .map(|interaction| {
                let n = self
                    .wirt
                    .iter()
                    .filter(|(t, _, i)| *t >= from && *t < to && i == interaction)
                    .count();
                (*interaction, n as f64 / total as f64)
            })
            .collect()
    }

    /// Accuracy over the whole run: `1 − errors/total`, as a percentage
    /// (the paper reports e.g. 99.999).
    pub fn accuracy_percent(&self) -> f64 {
        let total = self.total_ok + self.total_err;
        if total == 0 {
            return 100.0;
        }
        100.0 * (1.0 - self.total_err as f64 / total as f64)
    }
}

/// TPC-W clause 5.3.1.1 response-time limits (µs) per interaction.
pub fn wirt_limit_us(interaction: crate::Interaction) -> u64 {
    use crate::Interaction::*;
    match interaction {
        AdminConfirm => 20_000_000,
        AdminRequest | BestSellers | BuyConfirm | BuyRequest | CustomerRegistration
        | NewProducts | OrderDisplay | OrderInquiry | ShoppingCart => 3_000_000,
        Home | ProductDetail | SearchRequest => 3_000_000,
        SearchResults => 10_000_000,
    }
}

/// Simple linear regression `y = a + b·x` (scaleup fits, Figure 4).
pub fn linear_fit(points: &[(f64, f64)]) -> (f64, f64) {
    let n = points.len() as f64;
    if points.is_empty() {
        return (0.0, 0.0);
    }
    let sx: f64 = points.iter().map(|(x, _)| x).sum();
    let sy: f64 = points.iter().map(|(_, y)| y).sum();
    let sxx: f64 = points.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = points.iter().map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < f64::EPSILON {
        return (sy / n, 0.0);
    }
    let b = (n * sxy - sx * sy) / denom;
    let a = (sy - b * sx) / n;
    (a, b)
}

/// Pearson correlation coefficient squared (r², Figure 4's WIPS↔WIRT
/// correlation analysis).
pub fn r_squared(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    if points.len() < 2 {
        return 1.0;
    }
    let mx: f64 = points.iter().map(|(x, _)| x).sum::<f64>() / n;
    let my: f64 = points.iter().map(|(_, y)| y).sum::<f64>() / n;
    let cov: f64 = points.iter().map(|(x, y)| (x - mx) * (y - my)).sum();
    let vx: f64 = points.iter().map(|(x, _)| (x - mx).powi(2)).sum();
    let vy: f64 = points.iter().map(|(_, y)| (y - my).powi(2)).sum();
    if vx.abs() < f64::EPSILON || vy.abs() < f64::EPSILON {
        return 1.0;
    }
    (cov * cov) / (vx * vy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_windows() {
        let s = Schedule::paper();
        assert_eq!(s.measure_start_us(), 30_000_000);
        assert_eq!(s.measure_end_us(), 570_000_000);
        assert_eq!(s.total_us(), 600_000_000);
        assert!(!s.in_interval(29_999_999));
        assert!(s.in_interval(30_000_000));
        assert!(!s.in_interval(570_000_000));
    }

    #[test]
    fn recorder_buckets_and_totals() {
        let mut r = Recorder::new(10_000_000);
        r.record_ok(500_000, 20_000);
        r.record_ok(1_500_000, 30_000);
        r.record_ok(1_600_000, 30_000);
        r.record_error(1_700_000);
        assert_eq!(r.wips_series()[0], 1);
        assert_eq!(r.wips_series()[1], 2);
        assert_eq!(r.error_series()[1], 1);
        assert_eq!(r.total_ok(), 3);
        assert_eq!(r.total_errors(), 1);
    }

    #[test]
    fn awips_is_mean_of_buckets() {
        let mut r = Recorder::new(5_000_000);
        for t in [100_000u64, 200_000, 1_100_000, 1_200_000, 1_300_000] {
            r.record_ok(t, 1_000);
        }
        // Buckets: [2, 3, 0, 0, 0] → mean over first 2 s = 2.5.
        assert!((r.awips(0, 2_000_000) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn cv_zero_for_constant_series() {
        let mut r = Recorder::new(5_000_000);
        for s in 0..5u64 {
            for k in 0..10u64 {
                r.record_ok(s * 1_000_000 + k * 1_000, 500);
            }
        }
        assert!(r.cv(0, 5_000_000) < 1e-9);
    }

    #[test]
    fn wirt_stats() {
        let mut r = Recorder::new(2_000_000);
        for (i, rt) in [10_000u64, 20_000, 30_000, 40_000].iter().enumerate() {
            r.record_ok(i as u64 * 100_000, *rt);
        }
        assert!((r.mean_wirt(0, 2_000_000) - 25_000.0).abs() < 1e-6);
        assert_eq!(r.wirt_percentile(0, 2_000_000, 100.0), 40_000);
        assert_eq!(r.wirt_percentile(0, 2_000_000, 0.0), 10_000);
    }

    #[test]
    fn wirt_compliance_applies_per_interaction_limits() {
        let mut r = Recorder::new(10_000_000);
        // 10 fast Home pages and one slow one: p90 under the 3 s limit.
        for k in 0..10u64 {
            r.record_ok_typed(k * 100_000, 50_000, crate::Interaction::Home);
        }
        r.record_ok_typed(1_500_000, 9_000_000, crate::Interaction::Home);
        // SearchResults consistently slow but within its 10 s limit.
        for k in 0..5u64 {
            r.record_ok_typed(2_000_000 + k, 8_000_000, crate::Interaction::SearchResults);
        }
        // BestSellers blowing its 3 s limit.
        for k in 0..5u64 {
            r.record_ok_typed(3_000_000 + k, 5_000_000, crate::Interaction::BestSellers);
        }
        let report = r.wirt_compliance(0, 10_000_000);
        let get = |i: crate::Interaction| report.iter().find(|(x, ..)| *x == i).unwrap();
        assert!(get(crate::Interaction::Home).3, "home compliant at p90");
        assert!(get(crate::Interaction::SearchResults).3);
        assert!(!get(crate::Interaction::BestSellers).3);
        // Interactions with no samples are skipped.
        assert!(report
            .iter()
            .all(|(i, ..)| *i != crate::Interaction::BuyConfirm));
    }

    #[test]
    fn measured_mix_sums_to_one() {
        let mut r = Recorder::new(1_000_000);
        r.record_ok_typed(1, 1, crate::Interaction::Home);
        r.record_ok_typed(2, 1, crate::Interaction::Home);
        r.record_ok_typed(3, 1, crate::Interaction::BuyConfirm);
        let mix = r.measured_mix(0, 1_000_000);
        let total: f64 = mix.iter().map(|(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-9);
        let home = mix
            .iter()
            .find(|(i, _)| *i == crate::Interaction::Home)
            .unwrap()
            .1;
        assert!((home - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn accuracy_matches_paper_definition() {
        let mut r = Recorder::new(1_000_000);
        for _ in 0..99_999 {
            r.record_ok(1, 1);
        }
        r.record_error(2);
        let acc = r.accuracy_percent();
        assert!((acc - 99.999).abs() < 0.0005, "{acc}");
    }

    #[test]
    fn linear_fit_recovers_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|x| (x as f64, 3.0 + 2.0 * x as f64)).collect();
        let (a, b) = linear_fit(&pts);
        assert!((a - 3.0).abs() < 1e-9);
        assert!((b - 2.0).abs() < 1e-9);
    }

    #[test]
    fn r_squared_perfect_and_flat() {
        let pts: Vec<(f64, f64)> = (0..10).map(|x| (x as f64, 5.0 - x as f64)).collect();
        assert!((r_squared(&pts) - 1.0).abs() < 1e-9);
        let noise: Vec<(f64, f64)> = vec![(0.0, 1.0), (1.0, -1.0), (2.0, 1.0), (3.0, -1.0)];
        assert!(r_squared(&noise) < 0.5);
    }

    #[test]
    fn empty_recorder_is_benign() {
        let r = Recorder::new(1_000_000);
        assert_eq!(r.awips(0, 1_000_000), 0.0);
        assert_eq!(r.cv(0, 1_000_000), 0.0);
        assert_eq!(r.accuracy_percent(), 100.0);
        assert_eq!(r.mean_wirt(0, 1_000_000), 0.0);
    }
}
