//! # tpcw — the TPC-W benchmark as a library
//!
//! Everything the paper's evaluation (§3, §5) needs from TPC-W, built
//! from the v1.8 specification: the bookstore entity model (the nine
//! replicated classes of RobustStore's object model), the standard
//! database population (10 000 items; 30/50/70 emulated browsers for
//! ≈300/500/700 MB states), the fourteen web interactions with the
//! three workload profiles (browsing/shopping/ordering = 95/80/50 %
//! reads), remote browser emulators with exponential think times, and
//! the WIPS/WIRT/accuracy metrics extended with the dependability
//! measures of the paper.
//!
//! The store itself ([`Bookstore`]) is deterministic: every mutating
//! operation takes its timestamps and sampled values as arguments, so
//! it can sit behind the `treplica` state machine unchanged (the
//! `robuststore` crate does exactly that).
//!
//! ## Example
//!
//! ```
//! use tpcw::{Bookstore, PopulationParams, Profile, Rbe, RbeConfig};
//!
//! let params = PopulationParams { items: 100, ebs: 1, seed: 1 };
//! let store = Bookstore::open(params);
//! assert!(store.nominal_bytes() > 0);
//!
//! let mut rbe = Rbe::new(0, RbeConfig {
//!     profile: Profile::Shopping,
//!     think_mean_us: 1_000_000,
//!     items: params.items,
//!     customers: params.customers(),
//! }, 42);
//! let request = rbe.next_request();
//! assert!(!request.interaction.name().is_empty());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod interactions;
mod metrics;
pub mod model;
pub mod population;
mod rbe;
mod store;

pub use interactions::{Interaction, Profile, ALL_INTERACTIONS};
pub use metrics::{linear_fit, r_squared, Recorder, Schedule};
pub use model::{
    Address, AddressId, Author, AuthorId, Cart, CartId, CartLine, CcXact, Country, CountryId,
    Customer, CustomerId, Item, ItemId, Order, OrderId, OrderLine, OrderStatus, SHIP_TYPES,
    SUBJECTS,
};
pub use population::{base_population, c_uname, generate, BasePopulation, PopulationParams};
pub use rbe::{Rbe, RbeConfig, RequestBody, SessionUpdate, WebRequest};
pub use store::{Bookstore, NewCustomer, Overlay, Payment, StoreError};
