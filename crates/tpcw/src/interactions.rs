//! The 14 TPC-W web interactions and the three workload mixes.
//!
//! TPC-W specifies fourteen page types. The paper's dependability
//! benchmark uses the three standard profiles (§3): *browsing* (WIPSb,
//! 95% read), *shopping* (WIPS, 80% read — the reference profile) and
//! *ordering* (WIPSo, 50% read). We use the profiles' stationary
//! interaction distributions; the read/write split of each matches the
//! paper's stated ratios.

use rand::Rng;

/// One of the fourteen TPC-W web interactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Interaction {
    /// Home page.
    Home,
    /// New-products listing for a subject.
    NewProducts,
    /// Best-sellers listing for a subject.
    BestSellers,
    /// Product detail page.
    ProductDetail,
    /// Search form.
    SearchRequest,
    /// Search result page.
    SearchResults,
    /// Shopping-cart display/update (update).
    ShoppingCart,
    /// Customer registration (update).
    CustomerRegistration,
    /// Buy request: payment page (update — session refresh).
    BuyRequest,
    /// Buy confirm: order placement (update).
    BuyConfirm,
    /// Order-status inquiry form.
    OrderInquiry,
    /// Order-status display.
    OrderDisplay,
    /// Admin item-edit form.
    AdminRequest,
    /// Admin item-edit confirmation (update).
    AdminConfirm,
}

/// All interactions in canonical order.
pub const ALL_INTERACTIONS: [Interaction; 14] = [
    Interaction::Home,
    Interaction::NewProducts,
    Interaction::BestSellers,
    Interaction::ProductDetail,
    Interaction::SearchRequest,
    Interaction::SearchResults,
    Interaction::ShoppingCart,
    Interaction::CustomerRegistration,
    Interaction::BuyRequest,
    Interaction::BuyConfirm,
    Interaction::OrderInquiry,
    Interaction::OrderDisplay,
    Interaction::AdminRequest,
    Interaction::AdminConfirm,
];

impl Interaction {
    /// Whether this interaction updates replicated state (must go
    /// through the total order; reads are served locally, paper §5.2).
    pub fn is_update(self) -> bool {
        matches!(
            self,
            Interaction::ShoppingCart
                | Interaction::CustomerRegistration
                | Interaction::BuyRequest
                | Interaction::BuyConfirm
                | Interaction::AdminConfirm
        )
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Interaction::Home => "home",
            Interaction::NewProducts => "new_products",
            Interaction::BestSellers => "best_sellers",
            Interaction::ProductDetail => "product_detail",
            Interaction::SearchRequest => "search_request",
            Interaction::SearchResults => "search_results",
            Interaction::ShoppingCart => "shopping_cart",
            Interaction::CustomerRegistration => "customer_registration",
            Interaction::BuyRequest => "buy_request",
            Interaction::BuyConfirm => "buy_confirm",
            Interaction::OrderInquiry => "order_inquiry",
            Interaction::OrderDisplay => "order_display",
            Interaction::AdminRequest => "admin_request",
            Interaction::AdminConfirm => "admin_confirm",
        }
    }
}

/// The three TPC-W workload profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Profile {
    /// 95% read (WIPSb).
    Browsing,
    /// 80% read — the reference profile (WIPS).
    Shopping,
    /// 50% read (WIPSo).
    Ordering,
}

impl Profile {
    /// All profiles, in the paper's presentation order.
    pub const ALL: [Profile; 3] = [Profile::Browsing, Profile::Shopping, Profile::Ordering];

    /// The TPC-W metric name for this profile.
    pub fn metric_name(self) -> &'static str {
        match self {
            Profile::Browsing => "WIPSb",
            Profile::Shopping => "WIPS",
            Profile::Ordering => "WIPSo",
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Profile::Browsing => "browsing",
            Profile::Shopping => "shopping",
            Profile::Ordering => "ordering",
        }
    }

    /// Stationary interaction frequencies (percent ×100, so 29.00% =
    /// 2900), in [`ALL_INTERACTIONS`] order. From the TPC-W v1.8 mix
    /// tables.
    pub fn weights(self) -> [u32; 14] {
        match self {
            Profile::Browsing => [
                2900, 1100, 1100, 2100, 1200, 1100, 200, 82, 75, 69, 30, 25, 10, 9,
            ],
            Profile::Shopping => [
                1600, 500, 500, 1700, 2000, 1700, 1160, 300, 260, 120, 75, 66, 10, 9,
            ],
            Profile::Ordering => [
                912, 46, 46, 1235, 1453, 1308, 1353, 1286, 1273, 1018, 25, 22, 12, 11,
            ],
        }
    }

    /// Fraction of interactions that are updates, per the weights.
    pub fn update_ratio(self) -> f64 {
        let w = self.weights();
        let total: u32 = w.iter().sum();
        let updates: u32 = ALL_INTERACTIONS
            .iter()
            .zip(w.iter())
            .filter(|(i, _)| i.is_update())
            .map(|(_, w)| *w)
            .sum();
        updates as f64 / total as f64
    }

    /// Samples the next interaction.
    pub fn sample<R: Rng>(self, rng: &mut R) -> Interaction {
        let w = self.weights();
        let total: u32 = w.iter().sum();
        let mut x = rng.gen_range(0..total);
        for (i, weight) in ALL_INTERACTIONS.iter().zip(w.iter()) {
            if x < *weight {
                return *i;
            }
            x -= *weight;
        }
        Interaction::Home
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn update_ratios_match_paper() {
        // Paper §3: browsing 5%, shopping 20%, ordering 50% updates
        // (within the tolerance of the official mix tables).
        let b = Profile::Browsing.update_ratio();
        assert!((0.03..=0.06).contains(&b), "browsing {b}");
        let s = Profile::Shopping.update_ratio();
        assert!((0.17..=0.21).contains(&s), "shopping {s}");
        let o = Profile::Ordering.update_ratio();
        assert!((0.47..=0.52).contains(&o), "ordering {o}");
    }

    #[test]
    fn weights_cover_all_interactions() {
        for p in Profile::ALL {
            let w = p.weights();
            assert_eq!(w.len(), 14);
            let total: u32 = w.iter().sum();
            assert!((9_900..=10_100).contains(&total), "{p:?} total {total}");
        }
    }

    #[test]
    fn sampling_approximates_weights() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut home = 0u32;
        let n = 100_000;
        for _ in 0..n {
            if Profile::Browsing.sample(&mut rng) == Interaction::Home {
                home += 1;
            }
        }
        let frac = home as f64 / n as f64;
        assert!((0.27..=0.31).contains(&frac), "home fraction {frac}");
    }

    #[test]
    fn update_classification() {
        assert!(Interaction::BuyConfirm.is_update());
        assert!(Interaction::ShoppingCart.is_update());
        assert!(!Interaction::Home.is_update());
        assert!(!Interaction::BestSellers.is_update());
        let updates = ALL_INTERACTIONS.iter().filter(|i| i.is_update()).count();
        assert_eq!(updates, 5);
    }

    #[test]
    fn metric_names_match_tpcw() {
        assert_eq!(Profile::Browsing.metric_name(), "WIPSb");
        assert_eq!(Profile::Shopping.metric_name(), "WIPS");
        assert_eq!(Profile::Ordering.metric_name(), "WIPSo");
    }
}
