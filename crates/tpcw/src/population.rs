//! TPC-W database population.
//!
//! Follows the TPC-W v1.8 scaling rules used by the paper (§5.1): 10 000
//! items and a customer population proportional to the number of
//! emulated browsers (2880 × EB), with 30/50/70 EBs chosen to produce
//! initial state sizes of roughly 300/500/700 MB. Generation is a pure
//! function of [`PopulationParams`], so every replica (and every
//! recovery) regenerates an identical base population.
//!
//! Because several simulated replicas coexist in one process and the
//! base population is immutable, [`base_population`] memoizes it behind
//! an `Arc` keyed by parameters.

// The maps here are point-lookup indexes and a process-wide memo
// cache; none is ever iterated, so hash ordering cannot leak into
// replicated state or traces (clippy allows are site-by-site below).
#[allow(clippy::disallowed_types)]
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use treplica::impl_wire_struct;

use crate::model::{
    nominal, Address, AddressId, Author, AuthorId, CcXact, Country, CountryId, Customer,
    CustomerId, Item, ItemId, Order, OrderId, OrderLine, OrderStatus, SUBJECTS,
};

/// Scaling parameters of a population.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PopulationParams {
    /// Number of items (the paper uses 10 000).
    pub items: u32,
    /// Emulated-browser scale factor (30/50/70 in the paper).
    pub ebs: u32,
    /// Generation seed.
    pub seed: u64,
}

impl PopulationParams {
    /// The paper's configuration for a given EB scale.
    pub fn paper(ebs: u32) -> Self {
        PopulationParams {
            items: 10_000,
            ebs,
            seed: 0x7bc0_57a7e,
        }
    }

    /// Number of customers (TPC-W: 2880 × EB).
    pub fn customers(&self) -> u32 {
        2_880 * self.ebs
    }

    /// Number of addresses (2 × customers).
    pub fn addresses(&self) -> u32 {
        2 * self.customers()
    }

    /// Number of initial orders (0.9 × customers).
    pub fn orders(&self) -> u32 {
        (9 * self.customers()) / 10
    }

    /// Number of authors (0.25 × items).
    pub fn authors(&self) -> u32 {
        self.items / 4
    }
}

impl_wire_struct!(PopulationParams { items, ebs, seed });

/// The immutable generated database shared by all replicas of a run.
#[derive(Debug)]
pub struct BasePopulation {
    /// Generation parameters.
    pub params: PopulationParams,
    /// All authors, indexed by id.
    pub authors: Vec<Author>,
    /// All items, indexed by id.
    pub items: Vec<Item>,
    /// The 92 countries.
    pub countries: Vec<Country>,
    /// All addresses, indexed by id.
    pub addresses: Vec<Address>,
    /// All customers, indexed by id.
    pub customers: Vec<Customer>,
    /// Initial orders, indexed by id.
    pub orders: Vec<Order>,
    /// Order lines grouped per order (same index as `orders`).
    pub order_lines: Vec<Vec<OrderLine>>,
    /// One credit-card transaction per order (same index).
    pub cc_xacts: Vec<CcXact>,
    /// Items per subject (indices into `items`), precomputed.
    pub by_subject: Vec<Vec<ItemId>>,
    /// Customer ids by user name (lookup-only: never iterated).
    #[allow(clippy::disallowed_types)]
    pub by_uname: HashMap<String, CustomerId>,
}

/// TPC-W user name derivation: a digit-letter encoding of the id.
pub fn c_uname(id: CustomerId) -> String {
    let mut n = id.0 as u64;
    let mut s = String::from("U");
    loop {
        let d = (n % 26) as u8;
        s.push((b'A' + d) as char);
        n /= 26;
        if n == 0 {
            break;
        }
    }
    s
}

fn rand_string(rng: &mut StdRng, min: usize, max: usize) -> String {
    let len = rng.gen_range(min..=max);
    (0..len)
        .map(|_| (b'a' + rng.gen_range(0..26u8)) as char)
        .collect()
}

fn rand_digits(rng: &mut StdRng, len: usize) -> String {
    (0..len)
        .map(|_| (b'0' + rng.gen_range(0..10u8)) as char)
        .collect()
}

/// Generates a base population (deterministic in `params`).
#[allow(clippy::disallowed_types)] // builds the lookup-only uname index
pub fn generate(params: PopulationParams) -> BasePopulation {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let today: u32 = 14_000; // days since epoch, fixed reference date

    let countries: Vec<Country> = (0..92)
        .map(|i| Country {
            id: CountryId(i),
            name: format!("Country{i}"),
            exchange_micros: 1_000_000 + (i as u64) * 13_337,
            currency: format!("CUR{i}"),
        })
        .collect();

    let authors: Vec<Author> = (0..params.authors())
        .map(|i| Author {
            id: AuthorId(i),
            fname: rand_string(&mut rng, 3, 12),
            lname: rand_string(&mut rng, 3, 15),
            dob: rng.gen_range(1_000..today - 7_300),
            bio: rand_string(&mut rng, 30, 60),
        })
        .collect();

    let mut items: Vec<Item> = (0..params.items)
        .map(|i| {
            let srp = rng.gen_range(100..10_000u64);
            Item {
                id: ItemId(i),
                title: format!("{} {}", rand_string(&mut rng, 6, 14), i),
                author: AuthorId(rng.gen_range(0..params.authors())),
                pub_date: rng.gen_range(today - 7_300..today),
                publisher: rand_string(&mut rng, 8, 16),
                subject: rng.gen_range(0..SUBJECTS.len() as u8),
                desc: rand_string(&mut rng, 40, 80),
                thumbnail: format!("img/thumb/{i}.gif"),
                image: format!("img/full/{i}.gif"),
                srp_cents: srp,
                cost_cents: srp * rng.gen_range(50..90u64) / 100,
                avail: rng.gen_range(today..today + 30),
                stock: rng.gen_range(10..31),
                isbn: rand_digits(&mut rng, 13),
                pages: rng.gen_range(20..9_999),
                backing: rng.gen_range(0..5),
                dimensions: format!(
                    "{}x{}x{}",
                    rng.gen_range(1..99u32),
                    rng.gen_range(1..99u32),
                    rng.gen_range(1..99u32)
                ),
                related: [ItemId(0); 5],
            }
        })
        .collect();
    // Related items: five distinct other items.
    for item in items.iter_mut() {
        let mut related = [ItemId(0); 5];
        for r in related.iter_mut() {
            *r = ItemId(rng.gen_range(0..params.items));
        }
        item.related = related;
    }

    let addresses: Vec<Address> = (0..params.addresses())
        .map(|i| Address {
            id: AddressId(i),
            street1: rand_string(&mut rng, 10, 30),
            street2: rand_string(&mut rng, 5, 20),
            city: rand_string(&mut rng, 4, 15),
            state: rand_string(&mut rng, 2, 10),
            zip: rand_digits(&mut rng, 5),
            country: CountryId(rng.gen_range(0..92)),
        })
        .collect();

    let mut by_uname = HashMap::with_capacity(params.customers() as usize);
    let customers: Vec<Customer> = (0..params.customers())
        .map(|i| {
            let id = CustomerId(i);
            let uname = c_uname(id);
            by_uname.insert(uname.clone(), id);
            Customer {
                id,
                passwd: uname.to_lowercase(),
                uname,
                fname: rand_string(&mut rng, 3, 12),
                lname: rand_string(&mut rng, 3, 15),
                addr: AddressId(rng.gen_range(0..params.addresses())),
                phone: rand_digits(&mut rng, 10),
                email: format!("{}@example.com", rand_string(&mut rng, 5, 12)),
                since: rng.gen_range(today - 730..today),
                last_login: 0,
                login: 0,
                expiration: 0,
                discount_bp: rng.gen_range(0..5_100),
                balance_cents: 0,
                ytd_pmt_cents: rng.gen_range(0..1_000_000),
                birthdate: rng.gen_range(1_000..today - 6_570),
                data: rand_string(&mut rng, 100, 200),
            }
        })
        .collect();

    let num_orders = params.orders();
    let mut orders = Vec::with_capacity(num_orders as usize);
    let mut order_lines = Vec::with_capacity(num_orders as usize);
    let mut cc_xacts = Vec::with_capacity(num_orders as usize);
    for i in 0..num_orders {
        let customer = CustomerId(rng.gen_range(0..params.customers()));
        let n_lines = rng.gen_range(1..=5usize);
        let mut subtotal = 0u64;
        let lines: Vec<OrderLine> = (0..n_lines)
            .map(|_| {
                let item = ItemId(rng.gen_range(0..params.items));
                let qty = rng.gen_range(1..=4u32);
                subtotal += items[item.0 as usize].cost_cents * qty as u64;
                OrderLine {
                    order: OrderId(i),
                    item,
                    qty,
                    discount_bp: rng.gen_range(0..300),
                    comments: rand_string(&mut rng, 5, 20),
                }
            })
            .collect();
        let tax = subtotal * 825 / 10_000;
        let order = Order {
            id: OrderId(i),
            customer,
            date: (rng.gen_range(today - 60..today) as u64) * 86_400_000_000,
            subtotal_cents: subtotal,
            tax_cents: tax,
            total_cents: subtotal + tax + 300 + 100 * n_lines as u64,
            ship_type: rng.gen_range(0..6),
            ship_date: rng.gen_range(today..today + 7),
            bill_addr: AddressId(rng.gen_range(0..params.addresses())),
            ship_addr: AddressId(rng.gen_range(0..params.addresses())),
            status: match rng.gen_range(0..4u8) {
                0 => OrderStatus::Pending,
                1 => OrderStatus::Processing,
                2 => OrderStatus::Shipped,
                _ => OrderStatus::Denied,
            },
        };
        cc_xacts.push(CcXact {
            order: OrderId(i),
            cc_type: ["VISA", "MASTERCARD", "DISCOVER", "AMEX", "DINERS"][rng.gen_range(0..5usize)]
                .to_string(),
            cc_num: rand_digits(&mut rng, 16),
            cc_name: format!(
                "{} {}",
                rand_string(&mut rng, 3, 12),
                rand_string(&mut rng, 3, 15)
            ),
            cc_expiry: today + rng.gen_range(10..730),
            auth_id: rand_string(&mut rng, 15, 15),
            amount_cents: order.total_cents,
            date: order.date,
            country: CountryId(rng.gen_range(0..92)),
        });
        orders.push(order);
        order_lines.push(lines);
    }

    let mut by_subject: Vec<Vec<ItemId>> = vec![Vec::new(); SUBJECTS.len()];
    for item in &items {
        by_subject[item.subject as usize].push(item.id);
    }

    BasePopulation {
        params,
        authors,
        items,
        countries,
        addresses,
        customers,
        orders,
        order_lines,
        cc_xacts,
        by_subject,
        by_uname,
    }
}

impl BasePopulation {
    /// The modeled in-memory size of the base population — calibrated so
    /// the paper's 30/50/70 EB populations land near 300/500/700 MB.
    pub fn nominal_bytes(&self) -> u64 {
        let p = &self.params;
        let lines: u64 = self.order_lines.iter().map(|l| l.len() as u64).sum();
        p.customers() as u64 * nominal::CUSTOMER
            + p.addresses() as u64 * nominal::ADDRESS
            + p.orders() as u64 * nominal::ORDER
            + lines * nominal::ORDER_LINE
            + p.orders() as u64 * nominal::CC_XACT
            + p.items as u64 * nominal::ITEM
            + p.authors() as u64 * nominal::AUTHOR
            + 92 * nominal::COUNTRY
    }
}

/// Memoized shared base populations (one per parameter set per process).
#[allow(clippy::disallowed_types)] // memo cache: keyed lookups only
pub fn base_population(params: PopulationParams) -> Arc<BasePopulation> {
    static CACHE: OnceLock<Mutex<HashMap<PopulationParams, Arc<BasePopulation>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut guard = cache.lock().expect("population cache poisoned");
    guard
        .entry(params)
        .or_insert_with(|| Arc::new(generate(params)))
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> PopulationParams {
        PopulationParams {
            items: 100,
            ebs: 1,
            seed: 42,
        }
    }

    #[test]
    fn scaling_rules_match_spec() {
        let p = PopulationParams::paper(30);
        assert_eq!(p.customers(), 86_400);
        assert_eq!(p.addresses(), 172_800);
        assert_eq!(p.orders(), 77_760);
        assert_eq!(p.authors(), 2_500);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(tiny());
        let b = generate(tiny());
        assert_eq!(a.items, b.items);
        assert_eq!(a.customers, b.customers);
        assert_eq!(a.orders, b.orders);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(tiny());
        let b = generate(PopulationParams { seed: 43, ..tiny() });
        assert_ne!(a.items[0].title, b.items[0].title);
    }

    #[test]
    fn entity_counts_and_indexes() {
        let p = generate(tiny());
        assert_eq!(p.items.len(), 100);
        assert_eq!(p.customers.len(), 2_880);
        assert_eq!(p.addresses.len(), 5_760);
        assert_eq!(p.orders.len(), 2_592);
        assert_eq!(p.order_lines.len(), p.orders.len());
        assert_eq!(p.cc_xacts.len(), p.orders.len());
        let subject_total: usize = p.by_subject.iter().map(Vec::len).sum();
        assert_eq!(subject_total, 100);
        // uname index is complete and consistent.
        assert_eq!(p.by_uname.len(), 2_880);
        let c = &p.customers[17];
        assert_eq!(p.by_uname[&c.uname], c.id);
    }

    #[test]
    #[allow(clippy::disallowed_types)] // membership set in a test
    fn uname_derivation_is_injective_for_small_ids() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000 {
            assert!(seen.insert(c_uname(CustomerId(i))), "collision at {i}");
        }
    }

    #[test]
    fn nominal_sizes_hit_paper_targets() {
        // 30 EB ≈ 300 MB, 50 ≈ 500 MB, 70 ≈ 700 MB (±20%).
        for (ebs, target_mb) in [(30u32, 300u64), (50, 500), (70, 700)] {
            let p = PopulationParams::paper(ebs);
            // Compute nominal size analytically without generating the
            // full population (fast): average 3 lines per order.
            let lines = p.orders() as u64 * 3;
            let total = p.customers() as u64 * nominal::CUSTOMER
                + p.addresses() as u64 * nominal::ADDRESS
                + p.orders() as u64 * nominal::ORDER
                + lines * nominal::ORDER_LINE
                + p.orders() as u64 * nominal::CC_XACT
                + p.items as u64 * nominal::ITEM
                + p.authors() as u64 * nominal::AUTHOR;
            let mb = total / 1_000_000;
            assert!(
                mb > target_mb * 8 / 10 && mb < target_mb * 12 / 10,
                "ebs={ebs}: {mb} MB vs target {target_mb} MB"
            );
        }
    }

    #[test]
    fn related_items_in_range() {
        let p = generate(tiny());
        for item in &p.items {
            for r in &item.related {
                assert!(r.0 < 100);
            }
        }
    }

    #[test]
    fn cache_returns_same_arc() {
        let a = base_population(tiny());
        let b = base_population(tiny());
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn stock_within_spec_bounds() {
        let p = generate(tiny());
        for item in &p.items {
            assert!((10..=30).contains(&item.stock));
        }
    }
}
