//! The TPC-W bookstore entity model.
//!
//! These are the nine classes of the paper's object model (§4, task I):
//! the entities and relations of TPC-W's conceptual schema — author,
//! item, country, address, customer, order, order line, credit-card
//! transaction, and shopping cart. Field sets follow the TPC-W v1.8
//! schema closely (names shortened to Rust conventions).

use treplica::{impl_wire_struct, Wire, WireError};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u32);

        impl Wire for $name {
            fn encode(&self, buf: &mut Vec<u8>) {
                self.0.encode(buf);
            }
            fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
                Ok($name(u32::decode(input)?))
            }
            fn wire_size(&self) -> u64 {
                4
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}{}", stringify!($name), self.0)
            }
        }
    };
}

id_type!(
    /// Identifies an author.
    AuthorId
);
id_type!(
    /// Identifies a book (item).
    ItemId
);
id_type!(
    /// Identifies a country.
    CountryId
);
id_type!(
    /// Identifies a postal address.
    AddressId
);
id_type!(
    /// Identifies a customer.
    CustomerId
);
id_type!(
    /// Identifies an order.
    OrderId
);
id_type!(
    /// Identifies a shopping cart (session).
    CartId
);

/// Book subject categories (TPC-W defines 24).
pub const SUBJECTS: [&str; 24] = [
    "ARTS",
    "BIOGRAPHIES",
    "BUSINESS",
    "CHILDREN",
    "COMPUTERS",
    "COOKING",
    "HEALTH",
    "HISTORY",
    "HOME",
    "HUMOR",
    "LITERATURE",
    "MYSTERY",
    "NON-FICTION",
    "PARENTING",
    "POLITICS",
    "REFERENCE",
    "RELIGION",
    "ROMANCE",
    "SELF-HELP",
    "SCIENCE-NATURE",
    "SCIENCE-FICTION",
    "SPORTS",
    "YOUTH",
    "TRAVEL",
];

/// An author (TPC-W `AUTHOR`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Author {
    /// Primary key.
    pub id: AuthorId,
    /// First name.
    pub fname: String,
    /// Last name.
    pub lname: String,
    /// Date of birth (days since epoch).
    pub dob: u32,
    /// Short biography.
    pub bio: String,
}
impl_wire_struct!(Author {
    id,
    fname,
    lname,
    dob,
    bio
});

/// A book (TPC-W `ITEM`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Item {
    /// Primary key.
    pub id: ItemId,
    /// Title.
    pub title: String,
    /// Author.
    pub author: AuthorId,
    /// Publication date (days since epoch).
    pub pub_date: u32,
    /// Publisher name.
    pub publisher: String,
    /// Subject index into [`SUBJECTS`].
    pub subject: u8,
    /// Description.
    pub desc: String,
    /// Thumbnail image path.
    pub thumbnail: String,
    /// Full image path.
    pub image: String,
    /// Suggested retail price in cents.
    pub srp_cents: u64,
    /// Current cost in cents.
    pub cost_cents: u64,
    /// Availability date (days since epoch).
    pub avail: u32,
    /// Stock on hand.
    pub stock: i32,
    /// ISBN.
    pub isbn: String,
    /// Page count.
    pub pages: u32,
    /// Binding type index.
    pub backing: u8,
    /// Physical dimensions.
    pub dimensions: String,
    /// The five related items shown on the product page.
    pub related: [ItemId; 5],
}

impl Wire for Item {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.id.encode(buf);
        self.title.encode(buf);
        self.author.encode(buf);
        self.pub_date.encode(buf);
        self.publisher.encode(buf);
        self.subject.encode(buf);
        self.desc.encode(buf);
        self.thumbnail.encode(buf);
        self.image.encode(buf);
        self.srp_cents.encode(buf);
        self.cost_cents.encode(buf);
        self.avail.encode(buf);
        self.stock.encode(buf);
        self.isbn.encode(buf);
        self.pages.encode(buf);
        self.backing.encode(buf);
        self.dimensions.encode(buf);
        for r in &self.related {
            r.encode(buf);
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(Item {
            id: ItemId::decode(input)?,
            title: String::decode(input)?,
            author: AuthorId::decode(input)?,
            pub_date: u32::decode(input)?,
            publisher: String::decode(input)?,
            subject: u8::decode(input)?,
            desc: String::decode(input)?,
            thumbnail: String::decode(input)?,
            image: String::decode(input)?,
            srp_cents: u64::decode(input)?,
            cost_cents: u64::decode(input)?,
            avail: u32::decode(input)?,
            stock: i32::decode(input)?,
            isbn: String::decode(input)?,
            pages: u32::decode(input)?,
            backing: u8::decode(input)?,
            dimensions: String::decode(input)?,
            related: [
                ItemId::decode(input)?,
                ItemId::decode(input)?,
                ItemId::decode(input)?,
                ItemId::decode(input)?,
                ItemId::decode(input)?,
            ],
        })
    }
}

/// A country (TPC-W `COUNTRY`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Country {
    /// Primary key.
    pub id: CountryId,
    /// Name.
    pub name: String,
    /// Exchange rate ×10⁶ against USD.
    pub exchange_micros: u64,
    /// Currency name.
    pub currency: String,
}
impl_wire_struct!(Country {
    id,
    name,
    exchange_micros,
    currency
});

/// A postal address (TPC-W `ADDRESS`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Address {
    /// Primary key.
    pub id: AddressId,
    /// Street line 1.
    pub street1: String,
    /// Street line 2.
    pub street2: String,
    /// City.
    pub city: String,
    /// State or region.
    pub state: String,
    /// Postal code.
    pub zip: String,
    /// Country.
    pub country: CountryId,
}
impl_wire_struct!(Address {
    street1,
    street2,
    city,
    state,
    zip,
    country,
    id
});

/// A registered customer (TPC-W `CUSTOMER`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Customer {
    /// Primary key.
    pub id: CustomerId,
    /// Unique user name.
    pub uname: String,
    /// Password.
    pub passwd: String,
    /// First name.
    pub fname: String,
    /// Last name.
    pub lname: String,
    /// Home address.
    pub addr: AddressId,
    /// Phone number.
    pub phone: String,
    /// Email address.
    pub email: String,
    /// Registration date (days since epoch).
    pub since: u32,
    /// Last login (µs timestamp).
    pub last_login: u64,
    /// Session login (µs timestamp).
    pub login: u64,
    /// Session expiration (µs timestamp).
    pub expiration: u64,
    /// Customer discount in basis points.
    pub discount_bp: u32,
    /// Account balance in cents (signed).
    pub balance_cents: i64,
    /// Year-to-date payments in cents.
    pub ytd_pmt_cents: i64,
    /// Birthdate (days since epoch).
    pub birthdate: u32,
    /// Free-form data field (TPC-W pads customers with this).
    pub data: String,
}
impl_wire_struct!(Customer {
    id,
    uname,
    passwd,
    fname,
    lname,
    addr,
    phone,
    email,
    since,
    last_login,
    login,
    expiration,
    discount_bp,
    balance_cents,
    ytd_pmt_cents,
    birthdate,
    data
});

/// Order status lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderStatus {
    /// Order placed, awaiting processing.
    Pending,
    /// Order being processed.
    Processing,
    /// Order shipped.
    Shipped,
    /// Order denied (e.g. payment failure).
    Denied,
}

impl Wire for OrderStatus {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(match self {
            OrderStatus::Pending => 0,
            OrderStatus::Processing => 1,
            OrderStatus::Shipped => 2,
            OrderStatus::Denied => 3,
        });
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(input)? {
            0 => Ok(OrderStatus::Pending),
            1 => Ok(OrderStatus::Processing),
            2 => Ok(OrderStatus::Shipped),
            3 => Ok(OrderStatus::Denied),
            t => Err(WireError::BadTag(t)),
        }
    }
    fn wire_size(&self) -> u64 {
        1
    }
}

/// Shipping methods (TPC-W defines six).
pub const SHIP_TYPES: [&str; 6] = ["AIR", "UPS", "FEDEX", "SHIP", "COURIER", "MAIL"];

/// An order (TPC-W `ORDERS`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Order {
    /// Primary key.
    pub id: OrderId,
    /// Ordering customer.
    pub customer: CustomerId,
    /// Order timestamp (µs, replica-deterministic).
    pub date: u64,
    /// Subtotal in cents.
    pub subtotal_cents: u64,
    /// Tax in cents.
    pub tax_cents: u64,
    /// Total in cents.
    pub total_cents: u64,
    /// Shipping method index into [`SHIP_TYPES`].
    pub ship_type: u8,
    /// Scheduled ship date (days since epoch).
    pub ship_date: u32,
    /// Billing address.
    pub bill_addr: AddressId,
    /// Shipping address.
    pub ship_addr: AddressId,
    /// Fulfilment status.
    pub status: OrderStatus,
}
impl_wire_struct!(Order {
    id,
    customer,
    date,
    subtotal_cents,
    tax_cents,
    total_cents,
    ship_type,
    ship_date,
    bill_addr,
    ship_addr,
    status
});

/// One line of an order (TPC-W `ORDER_LINE`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderLine {
    /// Order this line belongs to.
    pub order: OrderId,
    /// The purchased item.
    pub item: ItemId,
    /// Quantity.
    pub qty: u32,
    /// Line discount in basis points.
    pub discount_bp: u32,
    /// Gift-wrap / delivery comments.
    pub comments: String,
}
impl_wire_struct!(OrderLine {
    order,
    item,
    qty,
    discount_bp,
    comments
});

/// A credit-card transaction (TPC-W `CC_XACTS`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CcXact {
    /// The paid order.
    pub order: OrderId,
    /// Card type.
    pub cc_type: String,
    /// Card number (test data).
    pub cc_num: String,
    /// Cardholder name.
    pub cc_name: String,
    /// Expiry (days since epoch).
    pub cc_expiry: u32,
    /// Authorization id issued by the (emulated) payment gateway.
    pub auth_id: String,
    /// Amount in cents.
    pub amount_cents: u64,
    /// Transaction timestamp (µs, replica-deterministic).
    pub date: u64,
    /// Country of the issuing bank.
    pub country: CountryId,
}
impl_wire_struct!(CcXact {
    order,
    cc_type,
    cc_num,
    cc_name,
    cc_expiry,
    auth_id,
    amount_cents,
    date,
    country
});

/// One line in a shopping cart.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CartLine {
    /// The item.
    pub item: ItemId,
    /// Quantity (0 removes the line).
    pub qty: u32,
}
impl_wire_struct!(CartLine { item, qty });

/// A shopping cart (TPC-W `SHOPPING_CART` + `SHOPPING_CART_LINE`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Cart {
    /// Primary key (session-scoped).
    pub id: CartId,
    /// Creation/refresh timestamp (µs, replica-deterministic).
    pub time: u64,
    /// Current contents.
    pub lines: Vec<CartLine>,
}
impl_wire_struct!(Cart { id, time, lines });

impl Cart {
    /// Adds `qty` of `item`, or sets the quantity if the line exists;
    /// `qty == 0` removes the line (TPC-W cart-update semantics).
    pub fn update(&mut self, item: ItemId, qty: u32) {
        match self.lines.iter_mut().find(|l| l.item == item) {
            Some(line) => {
                if qty == 0 {
                    self.lines.retain(|l| l.item != item);
                } else {
                    line.qty = qty;
                }
            }
            None => {
                if qty > 0 {
                    self.lines.push(CartLine { item, qty });
                }
            }
        }
    }

    /// Subtotal in cents given an item-price lookup.
    pub fn subtotal_cents(&self, price_of: impl Fn(ItemId) -> u64) -> u64 {
        self.lines
            .iter()
            .map(|l| price_of(l.item) * l.qty as u64)
            .sum()
    }

    /// Total number of units in the cart.
    pub fn units(&self) -> u32 {
        self.lines.iter().map(|l| l.qty).sum()
    }
}

/// Modeled in-memory footprints (bytes) of each entity in the original
/// Java implementation. These drive the *nominal* state size — the paper
/// populates with 30/50/70 emulated browsers to reach 300/500/700 MB
/// states, and recovery times are a function of these sizes.
pub mod nominal {
    /// Customer record footprint.
    pub const CUSTOMER: u64 = 1_024;
    /// Address record footprint.
    pub const ADDRESS: u64 = 256;
    /// Order record footprint.
    pub const ORDER: u64 = 768;
    /// Order line footprint.
    pub const ORDER_LINE: u64 = 256;
    /// Credit-card transaction footprint.
    pub const CC_XACT: u64 = 256;
    /// Item record footprint.
    pub const ITEM: u64 = 1_024;
    /// Author record footprint.
    pub const AUTHOR: u64 = 512;
    /// Country record footprint.
    pub const COUNTRY: u64 = 128;
    /// Cart footprint (header; lines add `ORDER_LINE` each).
    pub const CART: u64 = 256;
    /// Extra per-order growth (session objects, indexes, fragmentation)
    /// calibrated against the paper's observed end-of-run state sizes
    /// under the ordering profile (§5.1: 300→≈550 MB over one run).
    pub const ORDER_SESSION_OVERHEAD: u64 = 4_096;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cart_update_semantics() {
        let mut c = Cart::default();
        c.update(ItemId(1), 2);
        c.update(ItemId(2), 1);
        assert_eq!(c.units(), 3);
        c.update(ItemId(1), 5);
        assert_eq!(c.units(), 6);
        c.update(ItemId(2), 0);
        assert_eq!(c.lines.len(), 1);
        c.update(ItemId(3), 0);
        assert_eq!(c.lines.len(), 1, "zero-qty add is a no-op");
    }

    #[test]
    fn cart_subtotal() {
        let mut c = Cart::default();
        c.update(ItemId(1), 2);
        c.update(ItemId(2), 3);
        let subtotal = c.subtotal_cents(|i| if i == ItemId(1) { 100 } else { 10 });
        assert_eq!(subtotal, 230);
    }

    #[test]
    fn entity_wire_roundtrips() {
        let item = Item {
            id: ItemId(7),
            title: "The Part-Time Parliament".into(),
            author: AuthorId(1),
            pub_date: 10_000,
            publisher: "ACM".into(),
            subject: 4,
            desc: "consensus".into(),
            thumbnail: "img/t7.gif".into(),
            image: "img/7.gif".into(),
            srp_cents: 4_999,
            cost_cents: 3_999,
            avail: 10_100,
            stock: 17,
            isbn: "0-123-45678-9".into(),
            pages: 33,
            backing: 1,
            dimensions: "9x6x1".into(),
            related: [ItemId(1), ItemId(2), ItemId(3), ItemId(4), ItemId(5)],
        };
        let bytes = item.to_bytes();
        assert_eq!(Item::from_bytes(&bytes).unwrap(), item);

        let order = Order {
            id: OrderId(1),
            customer: CustomerId(2),
            date: 123_456,
            subtotal_cents: 1000,
            tax_cents: 80,
            total_cents: 1180,
            ship_type: 2,
            ship_date: 10_200,
            bill_addr: AddressId(3),
            ship_addr: AddressId(4),
            status: OrderStatus::Pending,
        };
        assert_eq!(Order::from_bytes(&order.to_bytes()).unwrap(), order);

        let cart = Cart {
            id: CartId(9),
            time: 55,
            lines: vec![CartLine {
                item: ItemId(1),
                qty: 2,
            }],
        };
        assert_eq!(Cart::from_bytes(&cart.to_bytes()).unwrap(), cart);
    }

    #[test]
    fn order_status_tags() {
        for s in [
            OrderStatus::Pending,
            OrderStatus::Processing,
            OrderStatus::Shipped,
            OrderStatus::Denied,
        ] {
            assert_eq!(OrderStatus::from_bytes(&s.to_bytes()).unwrap(), s);
        }
        assert!(OrderStatus::from_bytes(&[9]).is_err());
    }

    #[test]
    fn subjects_and_ship_types_complete() {
        assert_eq!(SUBJECTS.len(), 24);
        assert_eq!(SHIP_TYPES.len(), 6);
    }
}
