//! Remote Browser Emulators (RBEs).
//!
//! TPC-W drives the system under test with emulated browsers: each
//! issues an interaction, waits for the response, thinks (exponentially
//! distributed think time — the paper reduces the 7 s default to 1 s,
//! §5.1), and repeats. The RBE keeps per-session context (customer,
//! cart) so the generated requests are well-formed, and pre-samples all
//! *client-side* request parameters; server-side non-determinism
//! (timestamps, discounts, payment authorizations) is sampled by the
//! web tier's facade before actions are built.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::interactions::{Interaction, Profile};
use crate::model::{CartId, CartLine, CustomerId, ItemId, SUBJECTS};
use crate::population::c_uname;

/// Client-supplied body of one web request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestBody {
    /// Home page (optionally as a known customer).
    Home {
        /// Returning customer, if the session has one.
        customer: Option<CustomerId>,
    },
    /// New-products listing.
    NewProducts {
        /// Subject index.
        subject: u8,
    },
    /// Best-sellers listing.
    BestSellers {
        /// Subject index.
        subject: u8,
    },
    /// Product detail.
    ProductDetail {
        /// The item to display.
        item: ItemId,
    },
    /// Search form (static).
    SearchRequest,
    /// Search results.
    SearchResults {
        /// 0 = subject, 1 = title, 2 = author.
        kind: u8,
        /// Subject index (kind 0).
        subject: u8,
        /// Search term (kinds 1–2).
        term: String,
    },
    /// Cart display/update.
    ShoppingCart {
        /// Existing cart, if any.
        cart: Option<CartId>,
        /// Item to add.
        add: Option<(ItemId, u32)>,
        /// Quantity updates.
        updates: Vec<CartLine>,
        /// Random item the server adds if the cart ends up empty
        /// (client-sampled per TPC-W).
        default_item: ItemId,
    },
    /// Customer registration: returning customer or new registration.
    CustomerRegistration {
        /// Returning customer (80% of registrations).
        returning: Option<CustomerId>,
        /// New-customer fields (20%).
        fname: String,
        /// Last name.
        lname: String,
        /// Phone.
        phone: String,
        /// Email.
        email: String,
        /// Birthdate.
        birthdate: u32,
        /// Free-form data.
        data: String,
    },
    /// Payment page (refreshes the session).
    BuyRequest {
        /// The purchasing customer.
        customer: CustomerId,
        /// The cart being bought.
        cart: Option<CartId>,
    },
    /// Order placement.
    BuyConfirm {
        /// The purchasing customer.
        customer: CustomerId,
        /// The cart to purchase.
        cart: Option<CartId>,
        /// Card type.
        cc_type: String,
        /// Card number.
        cc_num: String,
        /// Cardholder.
        cc_name: String,
        /// Expiry.
        cc_expiry: u32,
        /// Issuing country.
        country: u32,
        /// Shipping method.
        ship_type: u8,
    },
    /// Order-status form (static).
    OrderInquiry,
    /// Order-status display.
    OrderDisplay {
        /// Customer user name to look up.
        uname: String,
    },
    /// Admin edit form.
    AdminRequest {
        /// Item being edited.
        item: ItemId,
    },
    /// Admin edit confirmation.
    AdminConfirm {
        /// Item being edited.
        item: ItemId,
        /// New price in cents.
        new_cost_cents: u64,
    },
}

/// One web request as it leaves the emulated browser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WebRequest {
    /// The interaction type.
    pub interaction: Interaction,
    /// Client identifier (drives the proxy's hash balancing).
    pub client_id: u64,
    /// Request body.
    pub body: RequestBody,
}

/// What the browser needs back to maintain its session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionUpdate {
    /// Cart id created/confirmed by the server.
    pub cart: Option<CartId>,
    /// Customer id created by a registration.
    pub customer: Option<CustomerId>,
}

/// Configuration of one emulated browser.
#[derive(Debug, Clone)]
pub struct RbeConfig {
    /// Workload profile.
    pub profile: Profile,
    /// Mean think time in µs (paper: 1 s).
    pub think_mean_us: u64,
    /// Item population size.
    pub items: u32,
    /// Customer population size.
    pub customers: u32,
}

/// An emulated browser.
#[derive(Debug)]
pub struct Rbe {
    /// Stable client id (proxy affinity).
    pub client_id: u64,
    config: RbeConfig,
    rng: StdRng,
    customer: CustomerId,
    cart: Option<CartId>,
}

impl Rbe {
    /// Creates browser `client_id` with its own deterministic RNG.
    pub fn new(client_id: u64, config: RbeConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ (client_id.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        let customer = CustomerId(rng.gen_range(0..config.customers));
        Rbe {
            client_id,
            config,
            rng,
            customer,
            cart: None,
        }
    }

    /// Samples an exponentially distributed think time (capped at 10×
    /// the mean, mirroring TPC-W's truncation).
    pub fn think_time_us(&mut self) -> u64 {
        let u: f64 = self.rng.gen_range(1e-9..1.0);
        let t = -(u.ln()) * self.config.think_mean_us as f64;
        (t as u64).min(10 * self.config.think_mean_us)
    }

    fn rand_item(&mut self) -> ItemId {
        ItemId(self.rng.gen_range(0..self.config.items))
    }

    fn rand_string(&mut self, min: usize, max: usize) -> String {
        let len = self.rng.gen_range(min..=max);
        (0..len)
            .map(|_| (b'a' + self.rng.gen_range(0..26u8)) as char)
            .collect()
    }

    /// Emits the next request.
    ///
    /// Navigation fix-up: purchase interactions sampled without an
    /// active cart degrade to a cart interaction (both are updates, so
    /// the profile's read/write ratio is preserved).
    pub fn next_request(&mut self) -> WebRequest {
        let mut interaction = self.config.profile.sample(&mut self.rng);
        if matches!(
            interaction,
            Interaction::BuyConfirm | Interaction::BuyRequest
        ) && self.cart.is_none()
        {
            interaction = Interaction::ShoppingCart;
        }
        let body = match interaction {
            Interaction::Home => RequestBody::Home {
                customer: Some(self.customer),
            },
            Interaction::NewProducts => RequestBody::NewProducts {
                subject: self.rng.gen_range(0..SUBJECTS.len() as u8),
            },
            Interaction::BestSellers => RequestBody::BestSellers {
                subject: self.rng.gen_range(0..SUBJECTS.len() as u8),
            },
            Interaction::ProductDetail => RequestBody::ProductDetail {
                item: self.rand_item(),
            },
            Interaction::SearchRequest => RequestBody::SearchRequest,
            Interaction::SearchResults => {
                let kind = self.rng.gen_range(0..3u8);
                RequestBody::SearchResults {
                    kind,
                    subject: self.rng.gen_range(0..SUBJECTS.len() as u8),
                    term: self.rand_string(1, 2),
                }
            }
            Interaction::ShoppingCart => {
                let add = if self.cart.is_none() || self.rng.gen_bool(0.75) {
                    Some((self.rand_item(), self.rng.gen_range(1..=3)))
                } else {
                    None
                };
                let updates = if self.cart.is_some() && self.rng.gen_bool(0.3) {
                    vec![CartLine {
                        item: self.rand_item(),
                        qty: self.rng.gen_range(0..=4),
                    }]
                } else {
                    Vec::new()
                };
                RequestBody::ShoppingCart {
                    cart: self.cart,
                    add,
                    updates,
                    default_item: self.rand_item(),
                }
            }
            Interaction::CustomerRegistration => {
                // TPC-W: 20% of registrations create a new customer.
                let returning = if self.rng.gen_bool(0.8) {
                    Some(self.customer)
                } else {
                    None
                };
                RequestBody::CustomerRegistration {
                    returning,
                    fname: self.rand_string(3, 12),
                    lname: self.rand_string(3, 15),
                    phone: (0..10)
                        .map(|_| (b'0' + self.rng.gen_range(0..10u8)) as char)
                        .collect(),
                    email: format!("{}@example.com", self.rand_string(5, 10)),
                    birthdate: self.rng.gen_range(1_000..12_000),
                    data: self.rand_string(20, 40),
                }
            }
            Interaction::BuyRequest => RequestBody::BuyRequest {
                customer: self.customer,
                cart: self.cart,
            },
            Interaction::BuyConfirm => RequestBody::BuyConfirm {
                customer: self.customer,
                cart: self.cart,
                cc_type: ["VISA", "MASTERCARD", "DISCOVER", "AMEX", "DINERS"]
                    [self.rng.gen_range(0..5usize)]
                .to_string(),
                cc_num: (0..16)
                    .map(|_| (b'0' + self.rng.gen_range(0..10u8)) as char)
                    .collect(),
                cc_name: format!("{} {}", self.rand_string(3, 10), self.rand_string(3, 12)),
                cc_expiry: self.rng.gen_range(14_100..15_000),
                country: self.rng.gen_range(0..92),
                ship_type: self.rng.gen_range(0..6),
            },
            Interaction::OrderInquiry => RequestBody::OrderInquiry,
            Interaction::OrderDisplay => RequestBody::OrderDisplay {
                uname: c_uname(self.customer),
            },
            Interaction::AdminRequest => RequestBody::AdminRequest {
                item: self.rand_item(),
            },
            Interaction::AdminConfirm => RequestBody::AdminConfirm {
                item: self.rand_item(),
                new_cost_cents: self.rng.gen_range(100..10_000),
            },
        };
        WebRequest {
            interaction,
            client_id: self.client_id,
            body,
        }
    }

    /// Applies the server's session update after a successful response.
    pub fn on_response(&mut self, interaction: Interaction, update: SessionUpdate) {
        if let Some(cart) = update.cart {
            self.cart = Some(cart);
        }
        if let Some(customer) = update.customer {
            self.customer = customer;
        }
        if interaction == Interaction::BuyConfirm {
            self.cart = None; // the cart was consumed by the purchase
        }
    }

    /// The session's current cart, if any.
    pub fn cart(&self) -> Option<CartId> {
        self.cart
    }

    /// The session's customer.
    pub fn customer(&self) -> CustomerId {
        self.customer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> RbeConfig {
        RbeConfig {
            profile: Profile::Shopping,
            think_mean_us: 1_000_000,
            items: 1_000,
            customers: 2_880,
        }
    }

    #[test]
    fn think_time_has_right_mean_and_cap() {
        let mut rbe = Rbe::new(1, config(), 9);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| rbe.think_time_us()).sum();
        let mean = sum / n;
        assert!(
            (900_000..1_100_000).contains(&mean),
            "mean think time {mean}"
        );
        for _ in 0..10_000 {
            assert!(rbe.think_time_us() <= 10_000_000);
        }
    }

    #[test]
    fn purchase_without_cart_degrades_to_cart() {
        let mut rbe = Rbe::new(2, config(), 9);
        for _ in 0..2_000 {
            let req = rbe.next_request();
            assert!(
                !matches!(
                    req.interaction,
                    Interaction::BuyConfirm | Interaction::BuyRequest
                ),
                "no purchase before a cart exists"
            );
            if req.interaction == Interaction::ShoppingCart {
                break;
            }
        }
    }

    #[test]
    fn session_tracks_cart_and_purchase_clears_it() {
        let mut rbe = Rbe::new(3, config(), 9);
        rbe.on_response(
            Interaction::ShoppingCart,
            SessionUpdate {
                cart: Some(CartId(7)),
                customer: None,
            },
        );
        assert_eq!(rbe.cart(), Some(CartId(7)));
        rbe.on_response(Interaction::BuyConfirm, SessionUpdate::default());
        assert_eq!(rbe.cart(), None);
    }

    #[test]
    fn registration_updates_customer() {
        let mut rbe = Rbe::new(4, config(), 9);
        let before = rbe.customer();
        rbe.on_response(
            Interaction::CustomerRegistration,
            SessionUpdate {
                cart: None,
                customer: Some(CustomerId(99_999)),
            },
        );
        assert_ne!(rbe.customer(), before);
    }

    #[test]
    fn update_ratio_preserved_with_fixups() {
        // Even with buy→cart degradation, the fraction of update
        // interactions matches the profile.
        let mut rbe = Rbe::new(5, config(), 10);
        let mut updates = 0;
        let n = 50_000;
        for _ in 0..n {
            let req = rbe.next_request();
            if req.interaction.is_update() {
                updates += 1;
                if req.interaction == Interaction::ShoppingCart {
                    rbe.on_response(
                        Interaction::ShoppingCart,
                        SessionUpdate {
                            cart: Some(CartId(1)),
                            customer: None,
                        },
                    );
                }
                if req.interaction == Interaction::BuyConfirm {
                    rbe.on_response(Interaction::BuyConfirm, SessionUpdate::default());
                }
            }
        }
        let ratio = updates as f64 / n as f64;
        assert!((0.17..=0.22).contains(&ratio), "shopping ratio {ratio}");
    }

    #[test]
    fn distinct_clients_generate_distinct_streams() {
        let mut a = Rbe::new(1, config(), 9);
        let mut b = Rbe::new(2, config(), 9);
        let seq_a: Vec<_> = (0..20).map(|_| a.next_request().interaction).collect();
        let seq_b: Vec<_> = (0..20).map(|_| b.next_request().interaction).collect();
        assert_ne!(seq_a, seq_b);
    }
}
