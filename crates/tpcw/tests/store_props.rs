//! Property tests on the bookstore: overlay serialization round-trips
//! and state-machine determinism under random operation sequences.

use proptest::prelude::*;

use tpcw::{Bookstore, CartId, CartLine, CustomerId, ItemId, Overlay, Payment, PopulationParams};
use treplica::Wire;

const ITEMS: u32 = 120;

fn params() -> PopulationParams {
    PopulationParams {
        items: ITEMS,
        ebs: 1,
        seed: 17,
    }
}

/// One random bookstore operation.
#[derive(Debug, Clone)]
enum Op {
    NewCart { item: u32, qty: u32 },
    Update { cart: u32, item: u32, qty: u32 },
    Buy { cart: u32, customer: u32 },
    Admin { item: u32, cost: u64 },
    Refresh { customer: u32 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..ITEMS, 1..4u32).prop_map(|(item, qty)| Op::NewCart { item, qty }),
        (0..8u32, 0..ITEMS, 0..4u32).prop_map(|(cart, item, qty)| Op::Update { cart, item, qty }),
        (0..8u32, 0..2880u32).prop_map(|(cart, customer)| Op::Buy { cart, customer }),
        (0..ITEMS, 100..5000u64).prop_map(|(item, cost)| Op::Admin { item, cost }),
        (0..2880u32).prop_map(|customer| Op::Refresh { customer }),
    ]
}

fn payment() -> Payment {
    Payment {
        cc_type: "VISA".into(),
        cc_num: "4111".into(),
        cc_name: "P".into(),
        cc_expiry: 15_000,
        auth_id: "A1".into(),
        country: 1,
    }
}

fn apply(store: &mut Bookstore, op: &Op, t: u64) {
    match op {
        Op::NewCart { item, qty } => {
            let _ = store.do_cart(None, Some((ItemId(*item), *qty)), &[], ItemId(0), t);
        }
        Op::Update { cart, item, qty } => {
            let _ = store.do_cart(
                Some(CartId(*cart)),
                None,
                &[CartLine {
                    item: ItemId(*item),
                    qty: *qty,
                }],
                ItemId(1),
                t,
            );
        }
        Op::Buy { cart, customer } => {
            let _ = store.buy_confirm(CartId(*cart), CustomerId(*customer), &payment(), 1, t);
        }
        Op::Admin { item, cost } => {
            let _ = store.admin_update(ItemId(*item), *cost, "i".into(), "t".into());
        }
        Op::Refresh { customer } => {
            let _ = store.refresh_session(CustomerId(*customer), t);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Two replicas applying the same op sequence converge, and the
    /// overlay round-trips through the wire at every point.
    #[test]
    fn deterministic_and_serializable(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        let mut a = Bookstore::open(params());
        let mut b = Bookstore::open(params());
        for (t, op) in ops.iter().enumerate() {
            apply(&mut a, op, t as u64);
            apply(&mut b, op, t as u64);
        }
        prop_assert_eq!(&a, &b, "same ops must give identical stores");
        let encoded = a.overlay().to_bytes();
        let decoded = Overlay::from_bytes(&encoded).unwrap();
        prop_assert_eq!(&decoded, a.overlay());
        let rebuilt = Bookstore::from_parts(a.params(), decoded);
        prop_assert_eq!(&rebuilt, &a);
    }

    /// Invariants hold under any op sequence: stock never goes deeply
    /// negative (the replenishment rule kicks in), nominal size is
    /// monotone in orders, and order records stay internally consistent.
    #[test]
    fn invariants_under_random_ops(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let mut s = Bookstore::open(params());
        let base_nominal = s.nominal_bytes();
        for (t, op) in ops.iter().enumerate() {
            apply(&mut s, op, t as u64);
        }
        for item in 0..ITEMS {
            let stock = s.stock(ItemId(item)).unwrap();
            prop_assert!(stock > -25, "stock {} for item {}", stock, item);
        }
        prop_assert!(s.nominal_bytes() >= base_nominal);
        // Every new order's lines and payment agree with the order.
        let overlay = s.overlay();
        prop_assert_eq!(overlay.new_orders.len(), overlay.new_order_lines.len());
        prop_assert_eq!(overlay.new_orders.len(), overlay.new_cc_xacts.len());
        for (i, order) in overlay.new_orders.iter().enumerate() {
            prop_assert!(!overlay.new_order_lines[i].is_empty(), "order without lines");
            prop_assert_eq!(overlay.new_cc_xacts[i].order, order.id);
            prop_assert_eq!(overlay.new_cc_xacts[i].amount_cents, order.total_cents);
            prop_assert!(order.total_cents >= order.subtotal_cents + order.tax_cents);
        }
    }
}
