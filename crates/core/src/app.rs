//! The replicated-application contract (the paper's state machine
//! abstraction, §2).
//!
//! Treplica treats the application as a black box whose public methods
//! are deterministic actions. The middleware feeds it totally ordered
//! actions via [`Application::apply`], snapshots it for checkpoints via
//! [`Application::snapshot`], and reconstructs it during recovery via
//! [`Application::restore`] — the programmer-visible equivalents of
//! `execute()` and `getState()` in the paper.

use crate::wire::{Wire, WireError};

/// A checkpoint of application state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Serialized state (round-trips through [`Application::restore`]).
    pub data: Vec<u8>,
    /// The size this state *models*. The paper's experiments use 300, 500
    /// and 700 MB states whose checkpoint-load time dominates recovery;
    /// the simulation keeps a compact in-memory state but charges disk
    /// latency for this many bytes.
    pub nominal_bytes: u64,
}

impl Snapshot {
    /// A snapshot whose modeled size equals its real size.
    pub fn exact(data: Vec<u8>) -> Snapshot {
        let nominal_bytes = data.len() as u64;
        Snapshot {
            data,
            nominal_bytes,
        }
    }
}

/// A deterministic replicated application.
///
/// Determinism is the application's obligation (the paper's task II):
/// any randomness or clock reads must be sampled *before* constructing
/// the action and carried inside it, so every replica computes the same
/// state. See the `robuststore` crate for the worked retrofit.
pub trait Application: Sized {
    /// The deterministic action type (a command object).
    type Action: Wire + Clone + Eq + std::hash::Hash + std::fmt::Debug;
    /// What [`Application::apply`] returns to the local caller.
    type Reply;

    /// Applies one action, mutating state deterministically.
    fn apply(&mut self, action: &Self::Action) -> Self::Reply;

    /// Captures a checkpoint of the current state.
    fn snapshot(&self) -> Snapshot;

    /// Reconstructs state from a checkpoint's data.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the checkpoint bytes are malformed.
    fn restore(data: &[u8]) -> Result<Self, WireError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial counter application used across middleware tests.
    #[derive(Debug, PartialEq, Eq)]
    pub struct Counter {
        pub total: u64,
    }

    impl Application for Counter {
        type Action = u64;
        type Reply = u64;
        fn apply(&mut self, action: &u64) -> u64 {
            self.total += *action;
            self.total
        }
        fn snapshot(&self) -> Snapshot {
            Snapshot::exact(self.total.to_bytes())
        }
        fn restore(data: &[u8]) -> Result<Self, WireError> {
            Ok(Counter {
                total: u64::from_bytes(data)?,
            })
        }
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut c = Counter { total: 0 };
        assert_eq!(c.apply(&5), 5);
        assert_eq!(c.apply(&7), 12);
        let snap = c.snapshot();
        assert_eq!(snap.nominal_bytes, 8);
        let c2 = Counter::restore(&snap.data).unwrap();
        assert_eq!(c2, c);
    }

    #[test]
    fn snapshot_exact_sizes() {
        let s = Snapshot::exact(vec![1, 2, 3]);
        assert_eq!(s.nominal_bytes, 3);
    }
}
