//! The asynchronous persistent queue abstraction (paper §2).
//!
//! Treplica's primary programming interface is a totally ordered
//! persistent queue: `enqueue` is asynchronous, `dequeue` blocking, and
//! a replica that crashes and rebinds is guaranteed to observe every
//! element in the same order as everyone else. In this reproduction the
//! consensus machinery produces the ordered elements and
//! [`PersistentQueue`] is the delivery-side view: it enforces the total
//! order invariant (strictly increasing slots, no duplicates) and holds
//! elements until the application consumes them — including during
//! recovery, while the checkpoint is still loading from disk.

use std::collections::VecDeque;

use paxos::{ProposalId, Slot};

/// One totally ordered element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueEntry<A> {
    /// The consensus slot that ordered this element.
    pub slot: Slot,
    /// The proposal that produced it.
    pub pid: ProposalId,
    /// The element itself.
    pub action: A,
}

/// Delivery-side view of the asynchronous persistent queue.
///
/// ```
/// use treplica::PersistentQueue;
/// use paxos::{ProposalId, ReplicaId, Slot};
/// let mut q = PersistentQueue::new();
/// let pid = ProposalId { node: ReplicaId(0), epoch: 0, seq: 1 };
/// q.push(Slot(4), pid, "action");
/// assert_eq!(q.try_dequeue().unwrap().action, "action");
/// ```
#[derive(Debug)]
pub struct PersistentQueue<A> {
    entries: VecDeque<QueueEntry<A>>,
    /// All pushed slots are strictly above this.
    last_slot: Option<Slot>,
    enqueued: u64,
    dequeued: u64,
}

impl<A> PersistentQueue<A> {
    /// An empty queue.
    pub fn new() -> Self {
        PersistentQueue {
            entries: VecDeque::new(),
            last_slot: None,
            enqueued: 0,
            dequeued: 0,
        }
    }

    /// Pushes a decided element in total order.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is not strictly greater than every slot pushed
    /// before — the consensus layer guarantees in-order, gap-checked
    /// delivery, so a violation here is a protocol bug, not an input
    /// error.
    pub fn push(&mut self, slot: Slot, pid: ProposalId, action: A) {
        if let Some(last) = self.last_slot {
            assert!(
                slot > last,
                "total order violation: slot {slot} after {last}"
            );
        }
        self.last_slot = Some(slot);
        self.enqueued += 1;
        self.entries.push_back(QueueEntry { slot, pid, action });
    }

    /// Removes and returns the next element, if any (the non-blocking
    /// core of the paper's blocking `dequeue`).
    pub fn try_dequeue(&mut self) -> Option<QueueEntry<A>> {
        let e = self.entries.pop_front();
        if e.is_some() {
            self.dequeued += 1;
        }
        e
    }

    /// Elements currently waiting.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no elements are waiting.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total elements ever pushed.
    pub fn total_enqueued(&self) -> u64 {
        self.enqueued
    }

    /// Total elements ever dequeued.
    pub fn total_dequeued(&self) -> u64 {
        self.dequeued
    }

    /// The highest slot observed.
    pub fn last_slot(&self) -> Option<Slot> {
        self.last_slot
    }
}

impl<A> Default for PersistentQueue<A> {
    fn default() -> Self {
        PersistentQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paxos::ReplicaId;

    fn pid(seq: u64) -> ProposalId {
        ProposalId {
            node: ReplicaId(0),
            epoch: 0,
            seq,
        }
    }

    #[test]
    fn fifo_order_preserved() {
        let mut q = PersistentQueue::new();
        q.push(Slot(1), pid(1), "a");
        q.push(Slot(2), pid(2), "b");
        assert_eq!(q.len(), 2);
        assert_eq!(q.try_dequeue().unwrap().action, "a");
        assert_eq!(q.try_dequeue().unwrap().action, "b");
        assert!(q.try_dequeue().is_none());
        assert_eq!(q.total_enqueued(), 2);
        assert_eq!(q.total_dequeued(), 2);
    }

    #[test]
    #[should_panic(expected = "total order violation")]
    fn out_of_order_push_panics() {
        let mut q = PersistentQueue::new();
        q.push(Slot(5), pid(1), "a");
        q.push(Slot(5), pid(2), "b");
    }

    #[test]
    fn gaps_in_slots_are_fine() {
        // No-op slots are filtered before the queue; gaps are expected.
        let mut q = PersistentQueue::new();
        q.push(Slot(1), pid(1), "a");
        q.push(Slot(7), pid(2), "b");
        assert_eq!(q.last_slot(), Some(Slot(7)));
    }

    #[test]
    fn empty_queue_reports_empty() {
        let q: PersistentQueue<&str> = PersistentQueue::default();
        assert!(q.is_empty());
        assert_eq!(q.last_slot(), None);
    }
}
