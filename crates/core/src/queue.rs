//! The asynchronous persistent queue abstraction (paper §2).
//!
//! Treplica's primary programming interface is a totally ordered
//! persistent queue: `enqueue` is asynchronous, `dequeue` blocking, and
//! a replica that crashes and rebinds is guaranteed to observe every
//! element in the same order as everyone else. In this reproduction the
//! consensus machinery produces the ordered elements and
//! [`PersistentQueue`] is the delivery-side view: it enforces the total
//! order invariant (strictly increasing `(slot, index)` positions, no
//! duplicates) and holds elements until the application consumes them —
//! including during recovery, while the checkpoint is still loading
//! from disk.
//!
//! With group commit a single consensus slot orders a whole batch of
//! updates; `index` is the update's position inside its batch, so the
//! delivery order is lexicographic on `(slot, index)`.

use std::collections::VecDeque;

use paxos::{ProposalId, Slot};

/// One totally ordered element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueEntry<A> {
    /// The consensus slot that ordered this element.
    pub slot: Slot,
    /// Position of this element inside its batch (0 for the head; always
    /// 0 when batching is disabled).
    pub index: u32,
    /// The proposal that produced it.
    pub pid: ProposalId,
    /// Configuration epoch the slot was decided under (slots below a
    /// reconfiguration fence carry the old epoch, slots at or above it
    /// the new one).
    pub epoch: u64,
    /// The element itself.
    pub action: A,
}

/// Delivery-side view of the asynchronous persistent queue.
///
/// ```
/// use treplica::PersistentQueue;
/// use paxos::{ProposalId, ReplicaId, Slot};
/// let mut q = PersistentQueue::new();
/// let pid = ProposalId { node: ReplicaId(0), epoch: 0, seq: 1 };
/// q.push(Slot(4), 0, pid, 0, "action");
/// assert_eq!(q.try_dequeue().unwrap().action, "action");
/// ```
#[derive(Debug)]
pub struct PersistentQueue<A> {
    entries: VecDeque<QueueEntry<A>>,
    /// All pushed positions are strictly above this.
    last_pos: Option<(Slot, u32)>,
    enqueued: u64,
    dequeued: u64,
}

impl<A> PersistentQueue<A> {
    /// An empty queue.
    pub fn new() -> Self {
        PersistentQueue {
            entries: VecDeque::new(),
            last_pos: None,
            enqueued: 0,
            dequeued: 0,
        }
    }

    /// Pushes a decided element in total order.
    ///
    /// # Panics
    ///
    /// Panics if `(slot, index)` is not strictly greater than every
    /// position pushed before — the consensus layer guarantees in-order,
    /// gap-checked delivery and the middleware unpacks batches front to
    /// back, so a violation here is a protocol bug, not an input error.
    pub fn push(&mut self, slot: Slot, index: u32, pid: ProposalId, epoch: u64, action: A) {
        if let Some((last_slot, last_index)) = self.last_pos {
            assert!(
                (slot, index) > (last_slot, last_index),
                "total order violation: ({slot}, {index}) after ({last_slot}, {last_index})"
            );
        }
        self.last_pos = Some((slot, index));
        self.enqueued += 1;
        self.entries.push_back(QueueEntry {
            slot,
            index,
            pid,
            epoch,
            action,
        });
    }

    /// Removes and returns the next element, if any (the non-blocking
    /// core of the paper's blocking `dequeue`).
    pub fn try_dequeue(&mut self) -> Option<QueueEntry<A>> {
        let e = self.entries.pop_front();
        if e.is_some() {
            self.dequeued += 1;
        }
        e
    }

    /// Elements currently waiting.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no elements are waiting.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total elements ever pushed.
    pub fn total_enqueued(&self) -> u64 {
        self.enqueued
    }

    /// Total elements ever dequeued.
    pub fn total_dequeued(&self) -> u64 {
        self.dequeued
    }

    /// The highest slot observed.
    pub fn last_slot(&self) -> Option<Slot> {
        self.last_pos.map(|(s, _)| s)
    }
}

impl<A> Default for PersistentQueue<A> {
    fn default() -> Self {
        PersistentQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paxos::ReplicaId;

    fn pid(seq: u64) -> ProposalId {
        ProposalId {
            node: ReplicaId(0),
            epoch: 0,
            seq,
        }
    }

    #[test]
    fn fifo_order_preserved() {
        let mut q = PersistentQueue::new();
        q.push(Slot(1), 0, pid(1), 0, "a");
        q.push(Slot(2), 0, pid(2), 0, "b");
        assert_eq!(q.len(), 2);
        assert_eq!(q.try_dequeue().unwrap().action, "a");
        assert_eq!(q.try_dequeue().unwrap().action, "b");
        assert!(q.try_dequeue().is_none());
        assert_eq!(q.total_enqueued(), 2);
        assert_eq!(q.total_dequeued(), 2);
    }

    #[test]
    fn same_slot_batch_entries_ordered_by_index() {
        let mut q = PersistentQueue::new();
        q.push(Slot(5), 0, pid(1), 0, "a");
        q.push(Slot(5), 1, pid(2), 0, "b");
        q.push(Slot(5), 2, pid(3), 0, "c");
        q.push(Slot(6), 0, pid(4), 0, "d");
        let order: Vec<&str> = std::iter::from_fn(|| q.try_dequeue())
            .map(|e| e.action)
            .collect();
        assert_eq!(order, vec!["a", "b", "c", "d"]);
    }

    #[test]
    #[should_panic(expected = "total order violation")]
    fn out_of_order_push_panics() {
        let mut q = PersistentQueue::new();
        q.push(Slot(5), 0, pid(1), 0, "a");
        q.push(Slot(5), 0, pid(2), 0, "b");
    }

    #[test]
    #[should_panic(expected = "total order violation")]
    fn intra_batch_index_regression_panics() {
        let mut q = PersistentQueue::new();
        q.push(Slot(5), 3, pid(1), 0, "a");
        q.push(Slot(5), 2, pid(2), 0, "b");
    }

    #[test]
    fn gaps_in_slots_are_fine() {
        // No-op slots are filtered before the queue; gaps are expected.
        let mut q = PersistentQueue::new();
        q.push(Slot(1), 0, pid(1), 0, "a");
        q.push(Slot(7), 0, pid(2), 0, "b");
        assert_eq!(q.last_slot(), Some(Slot(7)));
    }

    #[test]
    fn empty_queue_reports_empty() {
        let q: PersistentQueue<&str> = PersistentQueue::default();
        assert!(q.is_empty());
        assert_eq!(q.last_slot(), None);
    }
}
