//! A threaded, wall-clock runtime for Treplica — the paper's blocking
//! programming interface.
//!
//! The sans-io [`Middleware`] is embedding-agnostic: the `cluster`
//! crate drives it on the discrete-event simulator for
//! experiments. This module is the embedding an application would use
//! directly: every replica runs on its own thread, peers exchange
//! messages over in-process channels, and [`ReplicaHandle::execute`]
//! blocks the calling thread until the action has been totally ordered
//! and applied locally — exactly the synchronous semantics the paper
//! describes for `execute()` (§2).
//!
//! Durability in this embedding is an in-memory stable store per
//! replica that survives [`ReplicaHandle::crash`]/[`ReplicaHandle::recover`]
//! cycles (the moral equivalent of the paper's local disk for a
//! process-crash fault model; a production deployment would put the
//! same `StableStore` contents on a real disk).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use paxos::{Batch, ReplicaId};
use simnet::StableStore;

use crate::app::Application;
use crate::middleware::{Middleware, MwEffect, MwMsg, RecoveredDisk, TreplicaConfig};

/// Reply channel for a blocking `execute`.
type ExecuteReply<App> =
    Sender<Result<<App as Application>::Reply, crate::middleware::StillRecovering>>;

/// Commands and events a replica thread processes.
enum Input<App: Application> {
    Peer {
        from: ReplicaId,
        msg: MwMsg<Batch<App::Action>>,
    },
    Execute {
        action: App::Action,
        reply: ExecuteReply<App>,
    },
    #[allow(clippy::type_complexity)]
    Query {
        run: Box<dyn FnOnce(Option<&App>) + Send>,
    },
    Tick,
    Crash,
    Recover,
    Shutdown,
}

struct ReplicaThread<App: Application> {
    id: ReplicaId,
    config: TreplicaConfig,
    peers: Vec<Sender<Input<App>>>,
    mw: Option<Middleware<App>>,
    store: StableStore,
    epoch: u64,
    started: Instant,
    factory: Arc<dyn Fn() -> App + Send + Sync>,
    waiting: BTreeMap<(u64, u64), ExecuteReply<App>>,
    recovered_flag: Arc<AtomicBool>,
}

impl<App: Application + 'static> ReplicaThread<App> {
    fn now_us(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }

    fn apply_effects(&mut self, effects: Vec<MwEffect<App>>) {
        let mut queue = effects;
        while !queue.is_empty() {
            let mut next = Vec::new();
            for e in queue {
                match e {
                    MwEffect::Send { to, msg, .. } => {
                        // In-process "network": direct channel send.
                        let _ = self.peers[to.index()].send(Input::Peer { from: self.id, msg });
                    }
                    MwEffect::DiskWrite { op, token, nominal } => {
                        // In-memory durability: applied synchronously.
                        if let (Some(nom), simnet::StableOp::Put { key, .. }) = (nominal, &op) {
                            self.store.set_nominal(key, nom);
                        }
                        self.store.apply(op);
                        if let Some(mw) = self.mw.as_mut() {
                            next.extend(mw.on_disk_write_done(token));
                        }
                    }
                    MwEffect::DiskRead { key, token } => {
                        let value = self.store.get(&key).map(<[u8]>::to_vec);
                        if let Some(mw) = self.mw.as_mut() {
                            next.extend(mw.on_disk_read_done(token, value));
                        }
                    }
                    MwEffect::DiskReadRaw { token, .. } => {
                        if let Some(mw) = self.mw.as_mut() {
                            next.extend(mw.on_disk_read_done(token, None));
                        }
                    }
                    MwEffect::Applied { pid, reply, .. } => {
                        // Wake the blocked `execute` that proposed this.
                        if pid.node == self.id {
                            if let Some(tx) = self.waiting.remove(&(pid.epoch, pid.seq)) {
                                let _ = tx.send(Ok(reply));
                            }
                        }
                    }
                    MwEffect::Reconfigured { .. } => {
                        // LocalCluster has a fixed replica set; the
                        // simulated cluster crate drives reconfiguration.
                    }
                    MwEffect::RecoveryComplete => {
                        self.recovered_flag.store(true, Ordering::SeqCst);
                    }
                }
            }
            queue = next;
        }
    }

    fn run(mut self, inbox: Receiver<Input<App>>) {
        while let Ok(input) = inbox.recv() {
            match input {
                Input::Peer { from, msg } => {
                    let now = self.now_us();
                    if let Some(mw) = self.mw.as_mut() {
                        let fx = mw.on_message(from, msg, now);
                        self.apply_effects(fx);
                    }
                }
                Input::Execute { action, reply } => match self.mw.as_mut() {
                    Some(mw) => match mw.execute(action, self.started.elapsed().as_micros() as u64)
                    {
                        Ok((pid, fx)) => {
                            self.waiting.insert((pid.epoch, pid.seq), reply);
                            self.apply_effects(fx);
                        }
                        Err(e) => {
                            let _ = reply.send(Err(e));
                        }
                    },
                    None => {
                        let _ = reply.send(Err(crate::middleware::StillRecovering));
                    }
                },
                Input::Query { run } => {
                    run(self.mw.as_ref().and_then(|m| m.state()));
                }
                Input::Tick => {
                    let now = self.now_us();
                    if let Some(mw) = self.mw.as_mut() {
                        let fx = mw.on_tick(now);
                        self.apply_effects(fx);
                    }
                }
                Input::Crash => {
                    // Volatile state vanishes; the stable store stays.
                    self.mw = None;
                    self.waiting.clear();
                }
                Input::Recover => {
                    let now = self.now_us();
                    if self.mw.is_none() {
                        self.epoch += 1;
                        self.recovered_flag.store(false, Ordering::SeqCst);
                        let disk =
                            RecoveredDisk::from_store(&self.store).unwrap_or(RecoveredDisk {
                                meta: None,
                                log_entries: Vec::new(),
                                log_first_index: 0,
                                log_bytes: 0,
                            });
                        let (mut mw, fx) = Middleware::recover(
                            self.id,
                            disk,
                            self.config.clone(),
                            self.epoch,
                            now,
                        );
                        mw.install_initial_state((self.factory)());
                        self.mw = Some(mw);
                        self.apply_effects(fx);
                    }
                }
                Input::Shutdown => break,
            }
        }
    }
}

/// A handle to one replica of a [`LocalCluster`].
pub struct ReplicaHandle<App: Application> {
    id: ReplicaId,
    tx: Sender<Input<App>>,
    recovered: Arc<AtomicBool>,
}

impl<App: Application> Clone for ReplicaHandle<App> {
    fn clone(&self) -> Self {
        ReplicaHandle {
            id: self.id,
            tx: self.tx.clone(),
            recovered: self.recovered.clone(),
        }
    }
}

impl<App: Application + 'static> ReplicaHandle<App> {
    /// This replica's id.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// Executes a deterministic action, blocking until it has been
    /// totally ordered and applied at this replica (the paper's
    /// synchronous `execute()`).
    ///
    /// # Errors
    ///
    /// Returns [`StillRecovering`](crate::StillRecovering) while the
    /// replica is crashed or recovering.
    pub fn execute(
        &self,
        action: App::Action,
    ) -> Result<App::Reply, crate::middleware::StillRecovering> {
        let (tx, rx) = unbounded();
        self.tx
            .send(Input::Execute { action, reply: tx })
            .map_err(|_| crate::middleware::StillRecovering)?;
        rx.recv().map_err(|_| crate::middleware::StillRecovering)?
    }

    /// Runs a closure against the replica's current state (the paper's
    /// `getState()` read path), blocking for the result. Returns `None`
    /// while the replica is crashed or its checkpoint is still loading.
    pub fn query<R: Send + 'static>(
        &self,
        f: impl FnOnce(&App) -> R + Send + 'static,
    ) -> Option<R> {
        let (tx, rx) = unbounded();
        let run = Box::new(move |state: Option<&App>| {
            let _ = tx.send(state.map(f));
        });
        if self.tx.send(Input::Query { run }).is_err() {
            return None;
        }
        rx.recv().ok().flatten()
    }

    /// Crashes the replica process (volatile state lost; durable store
    /// kept).
    pub fn crash(&self) {
        let _ = self.tx.send(Input::Crash);
    }

    /// Restarts the replica; recovery (checkpoint + backlog) proceeds
    /// autonomously. Poll [`ReplicaHandle::is_recovered`].
    pub fn recover(&self) {
        let _ = self.tx.send(Input::Recover);
    }

    /// Whether the most recent recovery has completed.
    pub fn is_recovered(&self) -> bool {
        self.recovered.load(Ordering::SeqCst)
    }
}

/// An in-process, wall-clock Treplica ensemble.
pub struct LocalCluster<App: Application> {
    handles: Vec<ReplicaHandle<App>>,
    threads: Vec<JoinHandle<()>>,
    ticker_stop: Arc<AtomicBool>,
    ticker: Option<JoinHandle<()>>,
}

impl<App: Application + Send + 'static> LocalCluster<App>
where
    App::Action: Send,
    App::Reply: Send,
{
    /// Spawns `n` replica threads hosting `factory()`-built applications
    /// (the factory must produce the same deterministic initial state
    /// every time), plus a ticker driving timeouts every `tick`.
    pub fn spawn(
        n: usize,
        config: TreplicaConfig,
        tick: Duration,
        factory: impl Fn() -> App + Send + Sync + 'static,
    ) -> LocalCluster<App> {
        let factory: Arc<dyn Fn() -> App + Send + Sync> = Arc::new(factory);
        type Channel<App> = (Sender<Input<App>>, Receiver<Input<App>>);
        let channels: Vec<Channel<App>> = (0..n).map(|_| unbounded()).collect();
        let senders: Vec<Sender<Input<App>>> = channels.iter().map(|(s, _)| s.clone()).collect();
        // Wall-clock by design: LocalCluster is the threaded runtime
        // outside the simulation (see the simlint.toml waiver).
        #[allow(clippy::disallowed_methods)]
        let started = Instant::now();

        let mut handles = Vec::new();
        let mut threads = Vec::new();
        for (i, (tx, rx)) in channels.into_iter().enumerate() {
            let recovered = Arc::new(AtomicBool::new(true));
            let thread = ReplicaThread {
                id: ReplicaId(i as u32),
                config: config.clone(),
                peers: senders.clone(),
                mw: Some(Middleware::new(
                    ReplicaId(i as u32),
                    factory(),
                    config.clone(),
                    0,
                )),
                store: StableStore::new(),
                epoch: 0,
                started,
                factory: factory.clone(),
                waiting: BTreeMap::new(),
                recovered_flag: recovered.clone(),
            };
            threads.push(std::thread::spawn(move || thread.run(rx)));
            handles.push(ReplicaHandle {
                id: ReplicaId(i as u32),
                tx,
                recovered,
            });
        }

        // Ticker thread: drives every replica's timeouts.
        let ticker_stop = Arc::new(AtomicBool::new(false));
        let stop = ticker_stop.clone();
        let tick_senders = senders.clone();
        let ticker = std::thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                std::thread::sleep(tick);
                for s in &tick_senders {
                    let _ = s.send(Input::Tick);
                }
            }
        });

        LocalCluster {
            handles,
            threads,
            ticker_stop,
            ticker: Some(ticker),
        }
    }

    /// Handle to replica `i`.
    pub fn handle(&self, i: usize) -> ReplicaHandle<App> {
        self.handles[i].clone()
    }

    /// Number of replicas.
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// Whether the cluster is empty (never true for a spawned cluster).
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// Stops all threads and waits for them.
    pub fn shutdown(mut self) {
        self.ticker_stop.store(true, Ordering::SeqCst);
        for h in &self.handles {
            let _ = h.tx.send(Input::Shutdown);
        }
        if let Some(t) = self.ticker.take() {
            let _ = t.join();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Guard against accidental drops without shutdown: detach threads but
/// stop the ticker (replica threads exit when their channels close).
impl<App: Application> Drop for LocalCluster<App> {
    fn drop(&mut self) {
        self.ticker_stop.store(true, Ordering::SeqCst);
        for h in &self.handles {
            let _ = h.tx.send(Input::Shutdown);
        }
    }
}
