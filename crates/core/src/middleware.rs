//! The Treplica middleware node: consensus + durable log + checkpoints +
//! autonomous recovery behind the paper's state-machine interface.
//!
//! One [`Middleware`] instance runs per replica process. Like the
//! `paxos` core it is sans-io: the driver (the `cluster` crate, on
//! `simnet`) feeds it network messages, disk completions and ticks, and
//! applies the [`MwEffect`]s it returns. This is where the paper's
//! recovery story lives (§2, "Recovery"):
//!
//! * every acceptor record is appended to the durable `paxos.log`
//!   *before* its protocol message leaves the node;
//! * periodically the application state is checkpointed to disk and the
//!   log truncated to the suffix past the checkpoint;
//! * on restart, the node reloads the newest checkpoint (a bulk disk
//!   read proportional to the *modeled* state size) **in parallel with**
//!   re-reading its log and re-learning the backlog from the live
//!   replicas — exactly the two overlapping transfers whose relative
//!   sizes explain the recovery-time shapes in the paper's Figure 6.

use std::collections::BTreeMap;

use obs::{EventBuf, TraceConfig, TraceEvent};
use paxos::{
    Ballot, Batch, Effect as PaxosEffect, Membership, Mode, Msg, PaxosConfig, PersistToken,
    ProposalId, Record, Replica, ReplicaId, ReplicaStatus, Slot,
};
use simnet::{StableOp, StableStore};

use crate::app::{Application, Snapshot};
use crate::codec::record_slot;
use crate::queue::PersistentQueue;
use crate::wire::{Wire, WireError};

/// Key of the checkpoint metadata record.
pub const META_KEY: &str = "treplica.meta";
/// Name of the durable consensus log.
pub const LOG_NAME: &str = "paxos.log";

/// Per-message wire overhead added to encoded payloads (Ethernet + IP +
/// UDP headers).
const WIRE_OVERHEAD: u64 = 46;

/// Middleware tuning knobs.
#[derive(Debug, Clone)]
pub struct TreplicaConfig {
    /// Consensus configuration.
    pub paxos: PaxosConfig,
    /// Actions applied between checkpoints.
    pub checkpoint_interval: u64,
    /// Decided history retained in memory *behind* the checkpoint so
    /// recovering peers can learn their backlog without a full state
    /// transfer. If a peer falls further behind than this, the snapshot
    /// transfer path ([`MwMsg::SnapshotRequest`]) takes over.
    pub retention_slots: u64,
    /// Optional flow control: at most this many of this node's updates
    /// may be outstanding (submitted but not yet applied locally);
    /// excess `execute`s queue inside the middleware and are released as
    /// earlier ones commit. Bounds the retry/collision amplification a
    /// single overloaded node can inject into the ensemble.
    pub max_outstanding: Option<usize>,
    /// Group commit: maximum updates coalesced into one consensus
    /// decree. `1` disables batching (every update is its own decree,
    /// the pre-batching behavior).
    pub batch_max_updates: usize,
    /// Group commit: maximum time (µs) the first update of a batch may
    /// wait for company before the batch is proposed anyway. `0` flushes
    /// every update immediately, regardless of `batch_max_updates`.
    pub batch_window_us: u64,
    /// Structured tracing (off by default: zero overhead when off).
    pub trace: TraceConfig,
}

impl TreplicaConfig {
    /// LAN defaults for an ensemble of `n` replicas (batching off).
    pub fn lan(n: usize) -> Self {
        TreplicaConfig {
            paxos: PaxosConfig::lan(n),
            checkpoint_interval: 2_000,
            retention_slots: 200_000,
            max_outstanding: None,
            batch_max_updates: 1,
            batch_window_us: 0,
            trace: TraceConfig::default(),
        }
    }
}

/// Checkpoint metadata, durably written after its checkpoint data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Meta {
    /// Slots below this are covered by the checkpoint.
    pub checkpoint_slot: Slot,
    /// Checkpoint generation (its key is `treplica.ckpt.<generation>`).
    pub generation: u64,
    /// Promise floor: the acceptor must never promise below this (covers
    /// `Promised` records dropped by log truncation).
    pub promised: Ballot,
    /// Configuration epoch in force when the checkpoint was taken.
    pub epoch: u64,
    /// Member set of that epoch (restart resumes under it; newer epochs
    /// are re-learned from the log or from peers).
    pub members: Vec<ReplicaId>,
}

impl Meta {
    /// The key the checkpoint data of `generation` lives under.
    pub fn ckpt_key(generation: u64) -> String {
        format!("treplica.ckpt.{generation}")
    }
}

impl Wire for Meta {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.checkpoint_slot.encode(buf);
        self.generation.encode(buf);
        self.promised.encode(buf);
        self.epoch.encode(buf);
        self.members.encode(buf);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(Meta {
            checkpoint_slot: Slot::decode(input)?,
            generation: u64::decode(input)?,
            promised: Ballot::decode(input)?,
            epoch: u64::decode(input)?,
            members: Vec::decode(input)?,
        })
    }
    fn wire_size(&self) -> u64 {
        self.checkpoint_slot.wire_size()
            + 8
            + self.promised.wire_size()
            + 8
            + self.members.wire_size()
    }
}

/// Messages exchanged between middleware nodes: consensus traffic plus
/// the snapshot-transfer protocol used when a recovering replica's
/// backlog fell past the peers' retained history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MwMsg<A> {
    /// Consensus-layer traffic, stamped with the sender's configuration
    /// epoch so a reconfigured cohort can fence out stragglers: messages
    /// from an older epoch are dropped (and traced) instead of being
    /// counted under the new epoch's quorum rule.
    Paxos {
        /// Sender's configuration epoch at send time.
        epoch: u64,
        /// Causal provenance stamp (origin node, monotone send counter,
        /// slot/ballot), carried on every transmission so receivers'
        /// traces can be joined back to senders'. Stamped
        /// unconditionally — the counter advances and the bytes ship
        /// whether or not tracing is on, keeping traced and untraced
        /// runs byte-identical.
        tag: paxos::CausalTag,
        /// The consensus message.
        msg: Msg<A>,
    },
    /// A recovering replica asks a peer for its current state.
    SnapshotRequest,
    /// Full state transfer: `data` restores an application covering all
    /// slots below `covers`; `nominal` is the modeled transfer size.
    /// Carries the sender's configuration so a freshly provisioned node
    /// adopts the current member set along with the state.
    SnapshotReply {
        /// Delivery resumes at this slot after restoring.
        covers: Slot,
        /// Configuration epoch of the snapshot.
        epoch: u64,
        /// Member set of that epoch.
        members: Vec<ReplicaId>,
        /// Serialized application state.
        data: Vec<u8>,
        /// Modeled size (drives network transfer latency).
        nominal: u64,
    },
}

impl<A: Wire> MwMsg<A> {
    /// Bytes this message occupies on the wire (headers included); the
    /// snapshot payload is charged at its modeled size.
    pub fn wire_bytes(&self) -> u64 {
        WIRE_OVERHEAD
            + match self {
                MwMsg::Paxos { tag, msg, .. } => 1 + 8 + tag.wire_size() + msg.wire_size(),
                MwMsg::SnapshotRequest => 1,
                MwMsg::SnapshotReply {
                    members, nominal, ..
                } => 1 + 8 + 8 + 8 + members.wire_size() + *nominal,
            }
    }
}

/// Effects the driver must apply.
#[derive(Debug)]
pub enum MwEffect<App: Application> {
    /// Send a middleware message (wire size already computed).
    Send {
        /// Destination replica.
        to: ReplicaId,
        /// The message.
        msg: MwMsg<Batch<App::Action>>,
        /// Bytes on the wire (payload + headers).
        bytes: u64,
    },
    /// Issue a durable disk operation; completion must be reported via
    /// [`Middleware::on_disk_write_done`] with the same token.
    DiskWrite {
        /// The operation.
        op: StableOp,
        /// Completion token.
        token: u64,
        /// If set, the written key models this many bytes (drives the
        /// recovery read latency).
        nominal: Option<u64>,
    },
    /// Issue a bulk keyed read; completion via
    /// [`Middleware::on_disk_read_done`].
    DiskRead {
        /// Key to read.
        key: String,
        /// Completion token.
        token: u64,
    },
    /// Issue a raw read of `bytes` (log replay); completion via
    /// [`Middleware::on_disk_read_done`] with `value: None`.
    DiskReadRaw {
        /// Bytes to read.
        bytes: u64,
        /// Completion token.
        token: u64,
    },
    /// An action committed and was applied to the local state.
    Applied {
        /// Slot that ordered it.
        slot: Slot,
        /// Position inside the slot's batch (0 when batching is off).
        index: u32,
        /// Proposal identity (matches the id returned by `execute`).
        pid: ProposalId,
        /// Configuration epoch the slot was decided under.
        epoch: u64,
        /// The application's reply.
        reply: App::Reply,
    },
    /// A reconfiguration decree reached its fence: this node now runs
    /// under configuration `epoch` with the given member set (the driver
    /// provisions joiners / decommissions leavers on this signal).
    Reconfigured {
        /// The fence slot.
        slot: Slot,
        /// The new configuration epoch.
        epoch: u64,
        /// Members of the new epoch.
        members: Vec<ReplicaId>,
    },
    /// Recovery finished: checkpoint restored, log replayed, backlog
    /// re-learned. The replica now serves as if it had never crashed.
    RecoveryComplete,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TokenKind {
    PaxosPersist(PersistToken),
    CheckpointData,
    MetaWrite,
    LogTruncate,
    CheckpointDelete,
    CheckpointRead,
    LogRead,
}

/// Mirror of the durable log's shape (entry slots and sizes) kept in
/// memory for truncation decisions and recovery-read sizing.
#[derive(Debug, Default)]
struct LogMirror {
    first_index: u64,
    entries: Vec<(Option<Slot>, u64)>,
}

impl LogMirror {
    fn push(&mut self, slot: Option<Slot>, bytes: u64) {
        self.entries.push((slot, bytes));
    }

    fn bytes(&self) -> u64 {
        self.entries.iter().map(|(_, b)| *b).sum()
    }

    /// Stable index of the first entry with an `Accepted` slot ≥ `cut`;
    /// entries before it are covered by the checkpoint.
    fn keep_from(&self, cut: Slot) -> u64 {
        for (i, (slot, _)) in self.entries.iter().enumerate() {
            if let Some(s) = slot {
                if *s >= cut {
                    return self.first_index + i as u64;
                }
            }
        }
        self.first_index + self.entries.len() as u64
    }

    fn truncate_front(&mut self, keep_from: u64) {
        if keep_from <= self.first_index {
            return;
        }
        let drop = ((keep_from - self.first_index) as usize).min(self.entries.len());
        self.entries.drain(..drop);
        self.first_index = keep_from.max(self.first_index);
    }
}

/// The durable state found on disk at restart.
#[derive(Debug)]
pub struct RecoveredDisk {
    /// Decoded checkpoint metadata, if a checkpoint completed before the
    /// crash.
    pub meta: Option<Meta>,
    /// Raw log entries (decoded lazily after the modeled log read).
    pub log_entries: Vec<Vec<u8>>,
    /// Stable index of the first surviving log entry; keeps the in-memory
    /// mirror aligned with the durable log across restarts so later
    /// checkpoint truncations cut at the right place.
    pub log_first_index: u64,
    /// Total log bytes (sizes the modeled read).
    pub log_bytes: u64,
}

impl RecoveredDisk {
    /// Inspects a node's stable store after restart.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the metadata record is corrupt.
    pub fn from_store(store: &StableStore) -> Result<RecoveredDisk, WireError> {
        let meta = match store.get(META_KEY) {
            Some(bytes) => Some(Meta::from_bytes(bytes)?),
            None => None,
        };
        let (log_entries, log_first_index, log_bytes) = match store.log(LOG_NAME) {
            Some(log) => (
                log.iter().map(|(_, e)| e.to_vec()).collect(),
                log.first_index(),
                log.bytes(),
            ),
            None => (Vec::new(), 0, 0),
        };
        Ok(RecoveredDisk {
            meta,
            log_entries,
            log_first_index,
            log_bytes,
        })
    }
}

#[derive(Debug)]
enum Phase {
    Active,
    Recovering {
        log_done: bool,
        checkpoint_done: bool,
        announced: bool,
    },
}

/// Error returned by [`Middleware::execute`] while the replica is still
/// recovering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StillRecovering;

impl std::fmt::Display for StillRecovering {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "replica is still recovering")
    }
}

impl std::error::Error for StillRecovering {}

/// Introspection snapshot of a middleware node.
#[derive(Debug, Clone)]
pub struct MwStatus {
    /// Consensus-layer status.
    pub paxos: ReplicaStatus,
    /// Whether recovery is still in progress.
    pub recovering: bool,
    /// Actions applied to the local state machine.
    pub applied: u64,
    /// Slot covered by the newest completed checkpoint.
    pub checkpoint_slot: Slot,
    /// Completed checkpoints.
    pub checkpoints: u64,
    /// Current durable-log size (mirror estimate).
    pub log_bytes: u64,
    /// Locally-submitted updates parked by flow control, waiting for an
    /// outstanding slot to free before they join a batch.
    pub withheld: usize,
    /// Updates buffered in the open (not yet proposed) batch.
    pub pending_batch: usize,
}

/// One Treplica middleware node.
#[derive(Debug)]
pub struct Middleware<App: Application> {
    id: ReplicaId,
    config: TreplicaConfig,
    paxos: Replica<Batch<App::Action>>,
    app: Option<App>,
    queue: PersistentQueue<App::Action>,
    phase: Phase,
    tokens: BTreeMap<u64, TokenKind>,
    next_token: u64,
    log: LogMirror,
    applied: u64,
    applied_since_checkpoint: u64,
    checkpoint_slot: Slot,
    checkpoint_generation: u64,
    checkpoints_completed: u64,
    checkpoint_in_flight: bool,
    pending_meta: Option<Meta>,
    now: u64,
    epoch: u64,
    recovery_completed_at: Option<u64>,
    /// Flow control: locally-submitted updates not yet applied here.
    outstanding_local: usize,
    /// Updates accepted but whose submission is withheld until a
    /// flow-control slot frees.
    withheld: std::collections::VecDeque<(ProposalId, App::Action)>,
    /// Group commit: updates buffered for the next batch proposal.
    pending_batch: Vec<(ProposalId, App::Action)>,
    /// When the open batch must be flushed even if not full.
    batch_deadline: Option<u64>,
    /// Allocator for per-update proposal ids (`execute` hands these out
    /// before the update joins a batch).
    update_seq: u64,
    /// Structured trace events (middleware-level, interleaved with the
    /// consensus core's in emission order). Drained by the driver via
    /// [`Middleware::take_trace`].
    trace: EventBuf,
    /// Submit times of locally-issued updates, for commit-latency trace
    /// points. Only populated while tracing is enabled.
    submit_times: BTreeMap<ProposalId, u64>,
    /// Monotone causal-tag counter, advanced on every protocol send.
    /// Unconditional (not trace-gated): the counter shapes the bytes on
    /// the wire, so it must not depend on whether anyone is watching.
    causal_seq: u64,
    /// Reused encode buffer for the per-message persist path (one
    /// exact-sized allocation per record instead of a growth chain).
    scratch: crate::wire::EncodeScratch,
}

impl<App: Application> Middleware<App> {
    /// Creates a fresh replica (first boot, empty disk) hosting `app`,
    /// and immediately checkpoints the initial state (the populated
    /// database is durable before the service opens, so any later
    /// recovery pays the full state reload the paper measures).
    pub fn bootstrap(
        id: ReplicaId,
        app: App,
        config: TreplicaConfig,
        now: u64,
    ) -> (Self, Vec<MwEffect<App>>) {
        let membership = Membership::initial(config.paxos.n);
        Self::bootstrap_with_membership(id, app, config, membership, now)
    }

    /// Like [`Middleware::bootstrap`], but under an explicit (possibly
    /// post-reconfiguration) member set — how the driver provisions a
    /// node joining mid-run: hand it the cluster's current configuration
    /// and let catch-up (log shipping or snapshot transfer) fill its
    /// state.
    pub fn bootstrap_with_membership(
        id: ReplicaId,
        app: App,
        config: TreplicaConfig,
        membership: Membership,
        now: u64,
    ) -> (Self, Vec<MwEffect<App>>) {
        let mut mw = Self::new_with_membership(id, app, config, membership, now);
        let mut out = Vec::new();
        mw.start_checkpoint(&mut out);
        (mw, out)
    }

    /// Creates a fresh replica (first boot, empty disk) hosting `app`.
    pub fn new(id: ReplicaId, app: App, config: TreplicaConfig, now: u64) -> Self {
        let membership = Membership::initial(config.paxos.n);
        Self::new_with_membership(id, app, config, membership, now)
    }

    /// [`Middleware::new`] under an explicit member set.
    pub fn new_with_membership(
        id: ReplicaId,
        app: App,
        config: TreplicaConfig,
        membership: Membership,
        now: u64,
    ) -> Self {
        let mut paxos = Replica::new_with_membership(id, config.paxos.clone(), membership, now);
        // Events feed both the full trace and the flight recorder, so
        // the buffers run whenever either sink is configured.
        paxos.set_tracing(config.trace.record_events());
        let trace = EventBuf::new(config.trace.record_events());
        Middleware {
            id,
            config,
            paxos,
            app: Some(app),
            queue: PersistentQueue::new(),
            phase: Phase::Active,
            tokens: BTreeMap::new(),
            next_token: 0,
            log: LogMirror::default(),
            applied: 0,
            applied_since_checkpoint: 0,
            checkpoint_slot: Slot::ZERO,
            checkpoint_generation: 0,
            checkpoints_completed: 0,
            checkpoint_in_flight: false,
            pending_meta: None,
            now,
            epoch: 0,
            recovery_completed_at: None,
            outstanding_local: 0,
            withheld: std::collections::VecDeque::new(),
            pending_batch: Vec::new(),
            batch_deadline: None,
            update_seq: 0,
            trace,
            submit_times: BTreeMap::new(),
            causal_seq: 0,
            scratch: crate::wire::EncodeScratch::new(),
        }
    }

    /// Restarts a replica from its durable disk contents.
    ///
    /// `epoch` must strictly exceed the crashed incarnation's (the driver
    /// uses the simulator's incarnation counter). Returns the middleware
    /// (in recovery phase) plus the two bulk reads to issue: the
    /// checkpoint load and the log replay, which proceed in parallel.
    pub fn recover(
        id: ReplicaId,
        disk: RecoveredDisk,
        config: TreplicaConfig,
        epoch: u64,
        now: u64,
    ) -> (Self, Vec<MwEffect<App>>) {
        let meta = disk.meta.clone();
        let start_slot = meta
            .as_ref()
            .map(|m| m.checkpoint_slot)
            .unwrap_or(Slot::ZERO);
        let promised_floor = meta.as_ref().map(|m| m.promised).unwrap_or(Ballot::BOTTOM);
        // Resume under the checkpoint's configuration; any reconfiguration
        // decided since is re-learned from the log suffix or from peers
        // (whose snapshot replies carry their newer epoch).
        let membership = match meta.as_ref() {
            Some(m) if !m.members.is_empty() => Membership::new(m.epoch, m.members.clone()),
            _ => Membership::initial(config.paxos.n),
        };

        // Decode the surviving log records; the modeled read latency is
        // charged via the DiskReadRaw effect below. A crash mid-append
        // can leave a torn (truncated) record: its decode fails, but it
        // still occupies a stable log index, so mirror it as a slot-less
        // placeholder — dropping it would misalign every later entry's
        // index and make checkpoint truncation cut the wrong records.
        // Records appended by later incarnations after a torn tail must
        // keep replaying.
        let mut records: Vec<Record<Batch<App::Action>>> = Vec::new();
        let mut mirror = LogMirror {
            first_index: disk.log_first_index,
            entries: Vec::new(),
        };
        for entry in &disk.log_entries {
            match Record::from_bytes(entry) {
                Ok(r) => {
                    mirror.push(
                        match &r {
                            Record::Accepted { slot, .. } => Some(*slot),
                            Record::Promised(_) => None,
                        },
                        entry.len() as u64,
                    );
                    records.push(r);
                }
                Err(_) => mirror.push(None, entry.len() as u64),
            }
        }
        let floor_record = Record::Promised(promised_floor);
        let mut paxos = Replica::recover_with_membership(
            id,
            config.paxos.clone(),
            membership,
            std::iter::once(&floor_record).chain(records.iter()),
            start_slot,
            epoch,
            now,
        );
        paxos.set_tracing(config.trace.record_events());
        let trace = EventBuf::new(config.trace.record_events());

        let mut mw = Middleware {
            id,
            config,
            paxos,
            app: None,
            queue: PersistentQueue::new(),
            phase: Phase::Recovering {
                log_done: false,
                checkpoint_done: false,
                announced: false,
            },
            tokens: BTreeMap::new(),
            next_token: 0,
            log: mirror,
            applied: 0,
            applied_since_checkpoint: 0,
            checkpoint_slot: start_slot,
            checkpoint_generation: meta.as_ref().map(|m| m.generation).unwrap_or(0),
            checkpoints_completed: 0,
            checkpoint_in_flight: false,
            pending_meta: None,
            now,
            epoch,
            recovery_completed_at: None,
            outstanding_local: 0,
            withheld: std::collections::VecDeque::new(),
            pending_batch: Vec::new(),
            batch_deadline: None,
            update_seq: 0,
            trace,
            submit_times: BTreeMap::new(),
            causal_seq: 0,
            scratch: crate::wire::EncodeScratch::new(),
        };
        let mut fx = Vec::new();
        let log_token = mw.alloc(TokenKind::LogRead);
        mw.trace.push(TraceEvent::LogReplayStart {
            bytes: disk.log_bytes,
        });
        fx.push(MwEffect::DiskReadRaw {
            bytes: disk.log_bytes,
            token: log_token,
        });
        match meta {
            Some(m) => {
                let ckpt_token = mw.alloc(TokenKind::CheckpointRead);
                mw.trace.push(TraceEvent::CheckpointLoadStart { bytes: 0 });
                fx.push(MwEffect::DiskRead {
                    key: Meta::ckpt_key(m.generation),
                    token: ckpt_token,
                });
            }
            None => {
                // Nothing ever checkpointed: the application starts
                // empty and replays everything through the queue. The
                // caller must provide the initial state via
                // `install_initial_state`.
                if let Phase::Recovering {
                    checkpoint_done, ..
                } = &mut mw.phase
                {
                    *checkpoint_done = true;
                }
            }
        }
        (mw, fx)
    }

    /// Supplies the application for a recovery that found no checkpoint
    /// (e.g. a crash before the first checkpoint completed). The state
    /// must be the same deterministic initial state all replicas booted
    /// with; the queue backlog replays everything on top.
    pub fn install_initial_state(&mut self, app: App) {
        if self.app.is_none() {
            self.app = Some(app);
        }
    }

    /// This replica's id.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// The hosted application (the paper's `getState()`', None only
    /// while a recovery's checkpoint is still loading).
    pub fn state(&self) -> Option<&App> {
        self.app.as_ref()
    }

    /// Whether this node is still recovering.
    pub fn is_recovering(&self) -> bool {
        matches!(self.phase, Phase::Recovering { .. })
    }

    /// When recovery completed (driver clock), if it has.
    pub fn recovery_completed_at(&self) -> Option<u64> {
        self.recovery_completed_at
    }

    /// Introspection snapshot.
    pub fn status(&self) -> MwStatus {
        MwStatus {
            paxos: self.paxos.status(),
            recovering: self.is_recovering(),
            applied: self.applied,
            checkpoint_slot: self.checkpoint_slot,
            checkpoints: self.checkpoints_completed,
            log_bytes: self.log.bytes(),
            withheld: self.withheld.len(),
            pending_batch: self.pending_batch.len(),
        }
    }

    /// Consensus operating mode (fast / classic / blocked).
    pub fn mode(&self) -> Mode {
        self.paxos.mode()
    }

    fn alloc(&mut self, kind: TokenKind) -> u64 {
        let t = self.next_token;
        self.next_token += 1;
        self.tokens.insert(t, kind);
        t
    }

    /// Submits a deterministic action for total ordering (the paper's
    /// `execute()`; asynchronous — completion arrives as
    /// [`MwEffect::Applied`] with the returned id). `now` is the caller's
    /// clock, used to arm the group-commit window.
    ///
    /// The update joins the open batch; the batch is proposed as a
    /// single consensus decree once it holds
    /// [`TreplicaConfig::batch_max_updates`] updates or its
    /// [`TreplicaConfig::batch_window_us`] window expires (the driver
    /// polls [`Middleware::batch_deadline`] and calls
    /// [`Middleware::on_batch_timer`]).
    ///
    /// # Errors
    ///
    /// Returns [`StillRecovering`] until recovery completes.
    pub fn execute(
        &mut self,
        action: App::Action,
        now: u64,
    ) -> Result<(ProposalId, Vec<MwEffect<App>>), StillRecovering> {
        if self.is_recovering() {
            return Err(StillRecovering);
        }
        self.now = self.now.max(now);
        let pid = ProposalId {
            node: self.id,
            epoch: self.epoch,
            seq: self.update_seq,
        };
        self.update_seq += 1;
        if self.trace.enabled() {
            self.submit_times.insert(pid, self.now);
            self.trace
                .push(TraceEvent::UpdateSubmitted { seq: pid.seq });
        }
        if let Some(cap) = self.config.max_outstanding {
            if self.outstanding_local >= cap {
                // Accept the update (so the caller has an id to wait on)
                // but withhold it from batching until a slot frees.
                self.outstanding_local += 1;
                self.withheld.push_back((pid, action));
                return Ok((pid, Vec::new()));
            }
        }
        self.outstanding_local += 1;
        let mut out = Vec::new();
        self.buffer_update(pid, action, &mut out);
        Ok((pid, out))
    }

    /// Adds an update to the open batch, flushing it when full (or
    /// immediately when the window is zero).
    fn buffer_update(
        &mut self,
        pid: ProposalId,
        action: App::Action,
        out: &mut Vec<MwEffect<App>>,
    ) {
        self.pending_batch.push((pid, action));
        if self.config.batch_window_us == 0 || self.config.batch_max_updates.max(1) == 1 {
            self.flush_pending("single", out);
        } else if self.pending_batch.len() >= self.config.batch_max_updates {
            self.flush_pending("size", out);
        } else if self.batch_deadline.is_none() {
            self.batch_deadline = Some(self.now + self.config.batch_window_us);
        }
    }

    /// Proposes the open batch as one consensus decree (one acceptor log
    /// append per replica instead of one per update — the group commit).
    /// `trigger` tags the trace event with what closed the batch.
    fn flush_pending(&mut self, trigger: &'static str, out: &mut Vec<MwEffect<App>>) {
        if self.pending_batch.is_empty() {
            return;
        }
        self.batch_deadline = None;
        let items = std::mem::take(&mut self.pending_batch);
        self.trace.push(TraceEvent::BatchFlushed {
            updates: items.len() as u64,
            trigger,
            first_seq: items.first().map_or(0, |(pid, _)| pid.seq),
        });
        let (_batch_pid, fx) = self.paxos.propose(Batch::new(items));
        let lowered = self.lower(fx);
        out.extend(lowered);
    }

    /// When the open batch must be flushed, if one is open. The driver
    /// arms a timer for this instant and calls
    /// [`Middleware::on_batch_timer`] when it fires.
    pub fn batch_deadline(&self) -> Option<u64> {
        self.batch_deadline
    }

    /// The group-commit window expired: propose whatever accumulated.
    /// Safe to call spuriously (stale timers are no-ops).
    pub fn on_batch_timer(&mut self, now: u64) -> Vec<MwEffect<App>> {
        self.now = self.now.max(now);
        let mut out = Vec::new();
        if self.batch_deadline.is_some_and(|d| d <= self.now) {
            self.flush_pending("window", &mut out);
        }
        out
    }

    /// Feeds an incoming middleware message.
    pub fn on_message(
        &mut self,
        from: ReplicaId,
        msg: MwMsg<Batch<App::Action>>,
        now: u64,
    ) -> Vec<MwEffect<App>> {
        self.now = self.now.max(now);
        if let Phase::Recovering {
            log_done: false, ..
        } = self.phase
        {
            // The process is still reading its log; like a booting
            // process whose sockets aren't up yet, it hears nothing.
            return Vec::new();
        }
        match msg {
            MwMsg::Paxos { epoch, msg: m, .. } => {
                let local = self.paxos.config_epoch();
                // Learning traffic is epoch-agnostic: it only reports
                // already-decided slots, and it is exactly what carries a
                // straggler (or a joiner) across a fence.
                let epoch_agnostic = matches!(
                    m,
                    Msg::Alive { .. } | Msg::LearnRequest { .. } | Msg::LearnReply { .. }
                );
                if !epoch_agnostic {
                    if epoch < local {
                        // Stale configuration: the sender has not crossed
                        // the fence yet. Counting its votes under the new
                        // epoch's quorum rule would be unsound.
                        self.trace.push(TraceEvent::StaleEpochRejected {
                            from: from.0,
                            msg_epoch: epoch,
                            local_epoch: local,
                        });
                        return Vec::new();
                    }
                    if epoch > local {
                        // We are behind the fence ourselves; only learning
                        // traffic until catch-up delivers the switch.
                        return Vec::new();
                    }
                }
                let fx = self.paxos.on_message(from, m, now);
                let mut out = self.lower(fx);
                self.maybe_request_snapshot(&mut out);
                out
            }
            MwMsg::SnapshotRequest => {
                let mut out = Vec::new();
                if let Some(app) = self.app.as_ref() {
                    if !self.is_recovering() {
                        let Snapshot {
                            data,
                            nominal_bytes,
                        } = app.snapshot();
                        let reply = MwMsg::SnapshotReply {
                            covers: self.paxos.decided_upto(),
                            // The epoch in force at `covers` (the
                            // delivery watermark), which is what the
                            // receiver resumes replay under.
                            epoch: self.paxos.log_epoch(),
                            members: self.paxos.membership().members().to_vec(),
                            data,
                            nominal: nominal_bytes,
                        };
                        let bytes = reply.wire_bytes();
                        out.push(MwEffect::Send {
                            to: from,
                            msg: reply,
                            bytes,
                        });
                    }
                }
                out
            }
            MwMsg::SnapshotReply {
                covers,
                epoch,
                members,
                data,
                ..
            } => {
                let mut out = Vec::new();
                if covers > self.paxos.decided_upto() {
                    if let Ok(app) = App::restore(&data) {
                        self.app = Some(app);
                        if let Phase::Recovering {
                            checkpoint_done, ..
                        } = &mut self.phase
                        {
                            *checkpoint_done = true;
                        }
                        // Adopt the sender's configuration along with its
                        // state: slots at `covers` and above were decided
                        // under it.
                        if epoch > self.paxos.config_epoch() && !members.is_empty() {
                            self.paxos.adopt_membership(Membership::new(epoch, members));
                        }
                        let fx = self.paxos.fast_forward(covers, epoch);
                        out.extend(self.lower(fx));
                    }
                }
                self.check_recovery_done(&mut out);
                out
            }
        }
    }

    /// Proposes a configuration change (the admin "add/remove/replace
    /// node" operation). Succeeds only on the current leader with no
    /// other reconfiguration in flight; the driver retries elsewhere on
    /// `false`. Completion arrives as [`MwEffect::Reconfigured`] at every
    /// member once the decree passes its fence.
    pub fn execute_reconfig(
        &mut self,
        add: Vec<ReplicaId>,
        remove: Vec<ReplicaId>,
        now: u64,
    ) -> (bool, Vec<MwEffect<App>>) {
        self.now = self.now.max(now);
        if self.is_recovering() {
            return (false, Vec::new());
        }
        let (ok, fx) = self.paxos.propose_reconfig(add, remove);
        let out = self.lower(fx);
        (ok, out)
    }

    /// The configuration (epoch + member set) this node currently runs
    /// under.
    pub fn membership(&self) -> &Membership {
        self.paxos.membership()
    }

    /// Whether a reconfiguration removed this node from the ensemble.
    pub fn is_retired(&self) -> bool {
        self.paxos.is_retired()
    }

    /// If a catch-up exchange revealed peers truncated past our
    /// watermark, ask the revealing peer for a full state transfer.
    fn maybe_request_snapshot(&mut self, out: &mut Vec<MwEffect<App>>) {
        if let Some((peer, _)) = self.paxos.take_snapshot_needed() {
            let msg = MwMsg::SnapshotRequest;
            let bytes = msg.wire_bytes();
            out.push(MwEffect::Send {
                to: peer,
                msg,
                bytes,
            });
        }
    }

    /// Periodic tick (heartbeats, elections, retries, checkpoint policy).
    pub fn on_tick(&mut self, now: u64) -> Vec<MwEffect<App>> {
        self.now = self.now.max(now);
        let mut out = if matches!(
            self.phase,
            Phase::Recovering {
                log_done: false,
                ..
            }
        ) {
            Vec::new()
        } else {
            let mut out = Vec::new();
            // Backstop for the group-commit window: the dedicated batch
            // timer normally flushes first, but a tick past the deadline
            // must not leave updates stranded.
            if self.batch_deadline.is_some_and(|d| d <= self.now) {
                self.flush_pending("window", &mut out);
            }
            let fx = self.paxos.on_tick(now);
            out.extend(self.lower(fx));
            out
        };
        self.maybe_request_snapshot(&mut out);
        self.check_recovery_done(&mut out);
        out
    }

    /// A durable write completed.
    pub fn on_disk_write_done(&mut self, token: u64) -> Vec<MwEffect<App>> {
        let kind = match self.tokens.remove(&token) {
            Some(k) => k,
            None => return Vec::new(),
        };
        match kind {
            TokenKind::PaxosPersist(pt) => {
                self.trace.push(TraceEvent::AppendDurable);
                let fx = self.paxos.on_persisted(pt);
                self.lower(fx)
            }
            TokenKind::CheckpointData => {
                // Data durable: now commit the metadata pointing at it.
                // Missing staged metadata is a token-bookkeeping bug;
                // skip the completion instead of killing the replica
                // outside the fault model (debug builds still assert).
                let Some(meta) = self.pending_meta.clone() else {
                    debug_assert!(false, "CheckpointData completion without staged meta");
                    return Vec::new();
                };
                let token = self.alloc(TokenKind::MetaWrite);
                let value = self.scratch.encode(&meta);
                vec![MwEffect::DiskWrite {
                    op: StableOp::Put {
                        key: META_KEY.to_string(),
                        value,
                    },
                    token,
                    nominal: None,
                }]
            }
            TokenKind::MetaWrite => {
                let Some(meta) = self.pending_meta.take() else {
                    debug_assert!(false, "MetaWrite completion without staged meta");
                    return Vec::new();
                };
                self.trace.push(TraceEvent::CheckpointDurable {
                    generation: meta.generation,
                });
                self.checkpoint_slot = meta.checkpoint_slot;
                self.checkpoints_completed += 1;
                self.checkpoint_in_flight = false;
                // Truncate the log below the checkpoint and drop the
                // consensus layer's decided history it covers.
                let keep_from = self.log.keep_from(meta.checkpoint_slot);
                self.log.truncate_front(keep_from);
                // Keep a retention window of decided history behind the
                // checkpoint for recovering peers.
                let retain_from = Slot(
                    meta.checkpoint_slot
                        .0
                        .saturating_sub(self.config.retention_slots),
                );
                self.paxos.truncate(retain_from);
                let trunc_token = self.alloc(TokenKind::LogTruncate);
                let mut fx = vec![MwEffect::DiskWrite {
                    op: StableOp::TruncateLog {
                        log: LOG_NAME.to_string(),
                        keep_from,
                    },
                    token: trunc_token,
                    nominal: None,
                }];
                // checked_sub doubles as the generation-0 guard: the very
                // first checkpoint has no predecessor to delete.
                if let Some(prev_gen) = meta.generation.checked_sub(1) {
                    let del_token = self.alloc(TokenKind::CheckpointDelete);
                    fx.push(MwEffect::DiskWrite {
                        op: StableOp::Delete {
                            key: Meta::ckpt_key(prev_gen),
                        },
                        token: del_token,
                        nominal: None,
                    });
                }
                fx
            }
            TokenKind::LogTruncate | TokenKind::CheckpointDelete => Vec::new(),
            TokenKind::CheckpointRead | TokenKind::LogRead => Vec::new(),
        }
    }

    /// A bulk read completed.
    pub fn on_disk_read_done(&mut self, token: u64, value: Option<Vec<u8>>) -> Vec<MwEffect<App>> {
        let kind = match self.tokens.remove(&token) {
            Some(k) => k,
            None => return Vec::new(),
        };
        let mut out = Vec::new();
        match kind {
            TokenKind::LogRead => {
                self.trace.push(TraceEvent::LogReplayed {
                    records: self.log.entries.len() as u64,
                });
                if let Phase::Recovering { log_done, .. } = &mut self.phase {
                    *log_done = true;
                }
                // The consensus layer is live now; its first ticks will
                // heartbeat and trigger backlog catch-up.
            }
            TokenKind::CheckpointRead => {
                if let Some(bytes) = value {
                    match App::restore(&bytes) {
                        Ok(app) => self.app = Some(app),
                        Err(_) => {
                            // Corrupt checkpoint: treat as absent; the
                            // caller's initial state + full replay will
                            // reconstruct (install_initial_state).
                        }
                    }
                }
                self.trace.push(TraceEvent::CheckpointLoaded {
                    slot: self.checkpoint_slot.0,
                });
                if let Phase::Recovering {
                    checkpoint_done, ..
                } = &mut self.phase
                {
                    *checkpoint_done = true;
                }
                self.drain_queue(&mut out);
            }
            _ => {}
        }
        self.check_recovery_done(&mut out);
        out
    }

    /// Lowers consensus effects into middleware effects, applying
    /// committed actions along the way. Decided batches are unpacked
    /// front to back so every update keeps its own `(slot, index)`
    /// position in the total order.
    fn lower(&mut self, fx: Vec<PaxosEffect<Batch<App::Action>>>) -> Vec<MwEffect<App>> {
        // Pull the consensus core's trace events first: they were emitted
        // while producing `fx`, so they precede the lowering below.
        if self.trace.enabled() {
            for e in self.paxos.take_trace_events() {
                self.trace.push(e);
            }
        }
        let mut out = Vec::new();
        for e in fx {
            match e {
                PaxosEffect::Send { to, msg } => {
                    // The causal sequence advances on every send, traced
                    // or not, so the tag bytes on the wire — and hence
                    // the whole simulation — are identical either way.
                    self.causal_seq += 1;
                    let tag = paxos::CausalTag::for_msg(self.id, self.causal_seq, &msg);
                    let msg = MwMsg::Paxos {
                        epoch: self.paxos.config_epoch(),
                        tag,
                        msg,
                    };
                    let bytes = msg.wire_bytes();
                    out.push(MwEffect::Send { to, msg, bytes });
                }
                PaxosEffect::Persist { record, token } => {
                    let entry = self.scratch.encode(&record);
                    self.trace.push(TraceEvent::LogAppend {
                        bytes: entry.len() as u64,
                    });
                    self.log.push(record_slot(&entry), entry.len() as u64);
                    let t = self.alloc(TokenKind::PaxosPersist(token));
                    out.push(MwEffect::DiskWrite {
                        op: StableOp::Append {
                            log: LOG_NAME.to_string(),
                            entry,
                        },
                        token: t,
                        nominal: None,
                    });
                }
                PaxosEffect::Deliver {
                    slot,
                    pid: _batch_pid,
                    value,
                    epoch,
                } => {
                    // The effect carries the epoch the slot was decided
                    // under (`Replica::log_epoch`); reading
                    // `config_epoch()` here would be wrong — the core
                    // switches epoch mid-drain, so by the time a
                    // pre-fence slot is lowered it may already read the
                    // new configuration.
                    for (i, (pid, action)) in value.items.into_iter().enumerate() {
                        self.queue.push(slot, i as u32, pid, epoch, action);
                    }
                }
                PaxosEffect::Reconfigured { slot, membership } => {
                    out.push(MwEffect::Reconfigured {
                        slot,
                        epoch: membership.epoch(),
                        members: membership.members().to_vec(),
                    });
                }
            }
        }
        self.drain_queue(&mut out);
        out
    }

    /// Applies queued deliveries if the application state is available.
    fn drain_queue(&mut self, out: &mut Vec<MwEffect<App>>) {
        if matches!(
            self.phase,
            Phase::Recovering {
                checkpoint_done: false,
                ..
            }
        ) {
            return; // checkpoint still loading; hold the backlog.
        }
        let app = match self.app.as_mut() {
            Some(a) => a,
            None => return,
        };
        let mut freed = 0usize;
        while let Some(entry) = self.queue.try_dequeue() {
            let reply = app.apply(&entry.action);
            self.applied += 1;
            self.applied_since_checkpoint += 1;
            if entry.pid.node == self.id {
                self.outstanding_local = self.outstanding_local.saturating_sub(1);
                freed += 1;
            }
            if self.trace.enabled() {
                // `latency_us` 0 marks an unknown submit time (remote or
                // replayed updates); the analyzer excludes those.
                let latency_us = self
                    .submit_times
                    .remove(&entry.pid)
                    .map(|t0| self.now.saturating_sub(t0))
                    .unwrap_or(0);
                self.trace.push(TraceEvent::UpdateDelivered {
                    slot: entry.slot.0,
                    index: u64::from(entry.index),
                    submitter: entry.pid.node.0,
                    seq: entry.pid.seq,
                    latency_us,
                });
            }
            out.push(MwEffect::Applied {
                slot: entry.slot,
                index: entry.index,
                pid: entry.pid,
                epoch: entry.epoch,
                reply,
            });
        }
        // Release withheld updates into the freed flow-control slots:
        // they join the open batch like fresh `execute`s.
        for _ in 0..freed {
            match self.withheld.pop_front() {
                Some((pid, action)) => self.buffer_update(pid, action, out),
                None => break,
            }
        }
        if self.applied_since_checkpoint >= self.config.checkpoint_interval
            && !self.checkpoint_in_flight
            && !self.is_recovering()
        {
            self.start_checkpoint(out);
        }
    }

    fn start_checkpoint(&mut self, out: &mut Vec<MwEffect<App>>) {
        // Only active nodes hold application state; a checkpoint request
        // on a recovering node is a phase-tracking bug — skip it rather
        // than panic on a protocol-driven path.
        let Some(app) = self.app.as_ref() else {
            debug_assert!(false, "start_checkpoint without application state");
            return;
        };
        let Snapshot {
            data,
            nominal_bytes,
        } = app.snapshot();
        self.applied_since_checkpoint = 0;
        self.checkpoint_in_flight = true;
        self.checkpoint_generation = self.checkpoint_generation.saturating_add(1);
        let meta = Meta {
            checkpoint_slot: self.paxos.decided_upto(),
            generation: self.checkpoint_generation,
            promised: self.paxos.status().ballot,
            epoch: self.paxos.config_epoch(),
            members: self.paxos.membership().members().to_vec(),
        };
        let key = Meta::ckpt_key(meta.generation);
        self.trace.push(TraceEvent::CheckpointWrite {
            generation: meta.generation,
            slot: meta.checkpoint_slot.0,
            bytes: nominal_bytes,
        });
        self.pending_meta = Some(meta);
        let token = self.alloc(TokenKind::CheckpointData);
        out.push(MwEffect::DiskWrite {
            op: StableOp::Put { key, value: data },
            token,
            nominal: Some(nominal_bytes),
        });
    }

    fn check_recovery_done(&mut self, out: &mut Vec<MwEffect<App>>) {
        let ready = matches!(
            self.phase,
            Phase::Recovering {
                log_done: true,
                checkpoint_done: true,
                announced: false,
            }
        ) && self.app.is_some()
            && !self.paxos_recovering();
        if ready {
            self.phase = Phase::Active;
            self.recovery_completed_at = Some(self.now);
            self.trace.push(TraceEvent::RecoveryComplete {
                slot: self.paxos.decided_upto().0,
            });
            out.push(MwEffect::RecoveryComplete);
        }
    }

    fn paxos_recovering(&self) -> bool {
        self.paxos.is_recovering()
    }

    /// The process epoch this middleware runs under.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether *full* structured tracing is enabled on this node (metrics,
    /// latency observation, unbounded record capture).
    pub fn trace_enabled(&self) -> bool {
        self.config.trace.enabled
    }

    /// Whether trace events are being recorded at all — either full
    /// tracing or just the bounded flight ring. Drivers use this to
    /// decide whether draining [`Self::take_trace`] is worthwhile.
    pub fn trace_active(&self) -> bool {
        self.trace.enabled()
    }

    /// Drains the trace events buffered since the last call (middleware
    /// and consensus core interleaved in emission order). The driver
    /// stamps them with its clock and node id.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        if self.trace.enabled() {
            for e in self.paxos.take_trace_events() {
                self.trace.push(e);
            }
        }
        self.trace.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::Snapshot;

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Counter {
        total: u64,
    }

    impl Application for Counter {
        type Action = u64;
        type Reply = u64;
        fn apply(&mut self, action: &u64) -> u64 {
            self.total += *action;
            self.total
        }
        fn snapshot(&self) -> Snapshot {
            Snapshot {
                data: self.total.to_bytes(),
                nominal_bytes: 1_000_000,
            }
        }
        fn restore(data: &[u8]) -> Result<Self, WireError> {
            Ok(Counter {
                total: u64::from_bytes(data)?,
            })
        }
    }

    fn config() -> TreplicaConfig {
        TreplicaConfig {
            checkpoint_interval: 2,
            ..TreplicaConfig::lan(1)
        }
    }

    /// Drives a single-replica middleware synchronously: completes every
    /// disk op immediately and loops sends back into itself.
    fn drain(
        mw: &mut Middleware<Counter>,
        fx: Vec<MwEffect<Counter>>,
        store: &mut StableStore,
    ) -> Vec<u64> {
        drain_counting(mw, fx, store).0
    }

    /// Like [`drain`], but also counts durable log appends — the unit
    /// the group commit coalesces.
    fn drain_counting(
        mw: &mut Middleware<Counter>,
        fx: Vec<MwEffect<Counter>>,
        store: &mut StableStore,
    ) -> (Vec<u64>, usize) {
        let mut appends = 0;
        let mut applied = Vec::new();
        let mut queue = fx;
        while !queue.is_empty() {
            let mut next = Vec::new();
            for e in queue {
                match e {
                    MwEffect::Send { msg, .. } => {
                        next.extend(mw.on_message(ReplicaId(0), msg, 0));
                    }
                    MwEffect::DiskWrite { op, token, nominal } => {
                        if matches!(op, StableOp::Append { .. }) {
                            appends += 1;
                        }
                        if let (Some(nom), StableOp::Put { key, .. }) = (nominal, &op) {
                            store.set_nominal(key, nom);
                        }
                        store.apply(op);
                        next.extend(mw.on_disk_write_done(token));
                    }
                    MwEffect::DiskRead { key, token } => {
                        let value = store.get(&key).map(<[u8]>::to_vec);
                        next.extend(mw.on_disk_read_done(token, value));
                    }
                    MwEffect::DiskReadRaw { token, .. } => {
                        next.extend(mw.on_disk_read_done(token, None));
                    }
                    MwEffect::Applied { reply, .. } => applied.push(reply),
                    MwEffect::RecoveryComplete => {}
                    MwEffect::Reconfigured { .. } => {}
                }
            }
            queue = next;
        }
        (applied, appends)
    }

    fn active_single() -> (Middleware<Counter>, StableStore) {
        active_single_with(config())
    }

    fn active_single_with(config: TreplicaConfig) -> (Middleware<Counter>, StableStore) {
        let mut store = StableStore::new();
        let (mut mw, boot) = Middleware::bootstrap(ReplicaId(0), Counter { total: 0 }, config, 0);
        drain(&mut mw, boot, &mut store);
        // Single-replica ensemble elects itself on the first tick.
        let fx = mw.on_tick(0);
        drain(&mut mw, fx, &mut store);
        let fx = mw.on_tick(200_000);
        drain(&mut mw, fx, &mut store);
        (mw, store)
    }

    #[test]
    fn bootstrap_writes_generation_one_checkpoint() {
        let (mw, store) = active_single();
        assert!(
            store.get(&Meta::ckpt_key(1)).is_some(),
            "bootstrap checkpoint durable"
        );
        let meta = Meta::from_bytes(store.get(META_KEY).expect("meta")).expect("decodes");
        assert_eq!(meta.generation, 1);
        assert_eq!(meta.checkpoint_slot, Slot::ZERO);
        assert_eq!(mw.status().checkpoints, 1);
        assert_eq!(store.nominal_size(&Meta::ckpt_key(1)), 1_000_000);
    }

    #[test]
    fn execute_applies_and_checkpoints_on_interval() {
        let (mut mw, mut store) = active_single();
        let mut applied = Vec::new();
        for v in 1..=5u64 {
            let (_pid, fx) = mw.execute(v, 0).expect("active");
            applied.extend(drain(&mut mw, fx, &mut store));
        }
        assert_eq!(
            applied,
            vec![1, 3, 6, 10, 15],
            "replies are post-apply totals"
        );
        // interval = 2 → checkpoints after actions 2 and 4 (plus boot).
        let st = mw.status();
        assert!(
            st.checkpoints >= 3,
            "periodic checkpoints: {}",
            st.checkpoints
        );
        // Obsolete checkpoint generations are deleted.
        let latest = Meta::from_bytes(store.get(META_KEY).unwrap())
            .unwrap()
            .generation;
        assert!(store.get(&Meta::ckpt_key(latest)).is_some());
        assert!(
            store
                .get(&Meta::ckpt_key(latest.saturating_sub(2)))
                .is_none(),
            "older generations must be deleted"
        );
        // The durable log was truncated behind the checkpoint.
        let log = store.log(LOG_NAME).expect("log exists");
        assert!(log.first_index() > 0, "log must have been truncated");
    }

    #[test]
    fn execute_rejected_while_recovering() {
        let (mut mw, mut store) = active_single();
        let (_pid, fx) = mw.execute(42, 0).expect("active");
        drain(&mut mw, fx, &mut store);
        let disk = RecoveredDisk::from_store(&store).expect("disk");
        let (mut recovering, _fx) =
            Middleware::<Counter>::recover(ReplicaId(0), disk, config(), 1, 0);
        assert!(recovering.is_recovering());
        assert!(
            recovering.execute(1, 0).is_err(),
            "recovering replica rejects execute"
        );
    }

    #[test]
    fn recovery_restores_from_checkpoint_and_log() {
        let (mut mw, mut store) = active_single();
        for v in 1..=5u64 {
            let (_pid, fx) = mw.execute(v, 0).expect("active");
            drain(&mut mw, fx, &mut store);
        }
        drop(mw);
        let disk = RecoveredDisk::from_store(&store).expect("disk");
        assert!(disk.meta.is_some());
        let (mut mw2, fx) = Middleware::recover(ReplicaId(0), disk, config(), 1, 0);
        let mut store2 = store.clone();
        drain(&mut mw2, fx, &mut store2);
        // Single replica: catch-up completes against itself on ticks.
        for t in 1..50u64 {
            let fx = mw2.on_tick(t * 100_000);
            drain(&mut mw2, fx, &mut store2);
            if !mw2.is_recovering() {
                break;
            }
        }
        assert!(!mw2.is_recovering(), "single-replica recovery completes");
        assert_eq!(
            mw2.state().expect("state").total,
            15,
            "sum of 1..=5 restored"
        );
    }

    #[test]
    fn meta_requires_valid_bytes() {
        assert!(Meta::from_bytes(&[1, 2, 3]).is_err());
        let m = Meta {
            checkpoint_slot: Slot(9),
            generation: 3,
            promised: Ballot::BOTTOM,
            epoch: 2,
            members: vec![ReplicaId(0), ReplicaId(3), ReplicaId(7)],
        };
        assert_eq!(Meta::from_bytes(&m.to_bytes()).unwrap(), m);
        assert_eq!(Meta::ckpt_key(3), "treplica.ckpt.3");
    }

    /// Simulates a crash mid-append: the durable log's final entry is a
    /// strict prefix of a record encoding (never decodes).
    fn tear_last_record(store: &mut StableStore) {
        let torn = {
            let log = store.log(LOG_NAME).expect("log exists");
            let entry = log.iter().last().expect("non-empty log").1.to_vec();
            assert!(entry.len() >= 2, "need a record long enough to tear");
            entry[..entry.len() - 1].to_vec()
        };
        store.apply(StableOp::Append {
            log: LOG_NAME.to_string(),
            entry: torn,
        });
    }

    #[test]
    fn recovery_tolerates_torn_final_record() {
        let (mut mw, mut store) = active_single();
        for v in 1..=5u64 {
            let (_pid, fx) = mw.execute(v, 0).expect("active");
            drain(&mut mw, fx, &mut store);
        }
        drop(mw);
        tear_last_record(&mut store);
        let disk = RecoveredDisk::from_store(&store).expect("disk");
        let (mut mw2, fx) = Middleware::recover(ReplicaId(0), disk, config(), 1, 0);
        let mut store2 = store.clone();
        drain(&mut mw2, fx, &mut store2);
        for t in 1..50u64 {
            let fx = mw2.on_tick(t * 100_000);
            drain(&mut mw2, fx, &mut store2);
            if !mw2.is_recovering() {
                break;
            }
        }
        assert!(!mw2.is_recovering(), "torn tail must not wedge recovery");
        assert_eq!(
            mw2.state().expect("state").total,
            15,
            "no durable decision lost"
        );
    }

    #[test]
    fn recovery_replays_records_appended_beyond_a_torn_entry() {
        let (mut mw, mut store) = active_single();
        for v in 1..=3u64 {
            let (_pid, fx) = mw.execute(v, 0).expect("active");
            drain(&mut mw, fx, &mut store);
        }
        drop(mw);
        tear_last_record(&mut store);

        // First restart survives the torn entry and keeps serving; its new
        // appends land *after* the torn entry in the stable log.
        let disk = RecoveredDisk::from_store(&store).expect("disk");
        let (mut mw2, fx) = Middleware::recover(ReplicaId(0), disk, config(), 1, 0);
        drain(&mut mw2, fx, &mut store);
        for t in 1..50u64 {
            let fx = mw2.on_tick(t * 100_000);
            drain(&mut mw2, fx, &mut store);
            if !mw2.is_recovering() {
                break;
            }
        }
        assert!(!mw2.is_recovering());
        for v in 4..=5u64 {
            let (_pid, fx) = mw2.execute(v, 0).expect("active");
            drain(&mut mw2, fx, &mut store);
        }
        drop(mw2);

        // A second restart must replay the records beyond the torn entry;
        // stopping at the first undecodable record would lose them.
        let disk = RecoveredDisk::from_store(&store).expect("disk");
        let (mut mw3, fx) = Middleware::recover(ReplicaId(0), disk, config(), 2, 0);
        drain(&mut mw3, fx, &mut store);
        for t in 1..50u64 {
            let fx = mw3.on_tick(t * 100_000);
            drain(&mut mw3, fx, &mut store);
            if !mw3.is_recovering() {
                break;
            }
        }
        assert!(!mw3.is_recovering());
        assert_eq!(
            mw3.state().expect("state").total,
            15,
            "post-torn appends replayed"
        );
    }

    #[test]
    fn recovered_mirror_keeps_stable_log_alignment() {
        let (mut mw, mut store) = active_single();
        for v in 1..=5u64 {
            let (_pid, fx) = mw.execute(v, 0).expect("active");
            drain(&mut mw, fx, &mut store);
        }
        drop(mw);
        let truncated_first = store.log(LOG_NAME).expect("log").first_index();
        assert!(truncated_first > 0, "checkpointing truncated the log");

        let disk = RecoveredDisk::from_store(&store).expect("disk");
        assert_eq!(disk.log_first_index, truncated_first);
        let (mut mw2, fx) = Middleware::recover(ReplicaId(0), disk, config(), 1, 0);
        drain(&mut mw2, fx, &mut store);
        for t in 1..50u64 {
            let fx = mw2.on_tick(t * 100_000);
            drain(&mut mw2, fx, &mut store);
            if !mw2.is_recovering() {
                break;
            }
        }
        assert!(!mw2.is_recovering());
        // Keep executing so post-recovery checkpoints truncate again; a
        // mirror rebuilt at index 0 would compute keep_from cuts that lag
        // the stable log and never free the old records.
        for v in 6..=9u64 {
            let (_pid, fx) = mw2.execute(v, 0).expect("active");
            drain(&mut mw2, fx, &mut store);
        }
        let first_after = store.log(LOG_NAME).expect("log").first_index();
        assert!(
            first_after > truncated_first,
            "post-recovery truncation must advance: {first_after} vs {truncated_first}"
        );
    }

    #[test]
    fn snapshot_request_answered_only_when_active() {
        let (mut mw, _store) = active_single();
        let fx = mw.on_message(ReplicaId(0), MwMsg::SnapshotRequest, 0);
        let has_reply = fx.iter().any(|e| {
            matches!(
                e,
                MwEffect::Send {
                    msg: MwMsg::SnapshotReply { .. },
                    ..
                }
            )
        });
        assert!(has_reply, "active replica serves snapshots");
    }

    fn batching_config(max: usize, window_us: u64) -> TreplicaConfig {
        TreplicaConfig {
            checkpoint_interval: 100,
            batch_max_updates: max,
            batch_window_us: window_us,
            ..TreplicaConfig::lan(1)
        }
    }

    #[test]
    fn full_batch_commits_with_one_log_append() {
        let (mut mw, mut store) = active_single_with(batching_config(3, 1_000_000));
        let (_p1, fx1) = mw.execute(1, 0).expect("active");
        assert!(fx1.is_empty(), "first update only opens the batch");
        assert_eq!(mw.status().pending_batch, 1);
        let (_p2, fx2) = mw.execute(2, 0).expect("active");
        assert!(fx2.is_empty());
        assert_eq!(mw.status().pending_batch, 2);
        // The third update fills the batch: one decree, one log append,
        // all three applied in submission order.
        let (_p3, fx3) = mw.execute(3, 0).expect("active");
        let (applied, appends) = drain_counting(&mut mw, fx3, &mut store);
        assert_eq!(applied, vec![1, 3, 6], "intra-batch submission order");
        assert_eq!(appends, 1, "group commit: one append for three updates");
        assert_eq!(mw.status().pending_batch, 0);
        assert_eq!(mw.batch_deadline(), None, "flush disarms the window");
    }

    #[test]
    fn batch_window_timer_flushes_partial_batch() {
        let (mut mw, mut store) = active_single_with(batching_config(8, 5_000));
        let (_pid, fx) = mw.execute(7, 0).expect("active");
        assert!(fx.is_empty(), "update waits for company");
        let deadline = mw.batch_deadline().expect("window armed");
        let early = mw.on_batch_timer(deadline - 1);
        assert!(early.is_empty(), "stale timer fire is a no-op");
        assert_eq!(mw.status().pending_batch, 1);
        let fx = mw.on_batch_timer(deadline);
        let applied = drain(&mut mw, fx, &mut store);
        assert_eq!(applied, vec![7], "window expiry proposes the partial batch");
        assert_eq!(mw.batch_deadline(), None);
    }

    #[test]
    fn recovery_replays_batched_updates_in_order() {
        let config = batching_config(5, 1_000_000);
        let (mut mw, mut store) = active_single_with(config.clone());
        let mut applied = Vec::new();
        for v in 1..=5u64 {
            let (_pid, fx) = mw.execute(v, 0).expect("active");
            applied.extend(drain(&mut mw, fx, &mut store));
        }
        assert_eq!(applied, vec![1, 3, 6, 10, 15], "one batch of five");
        drop(mw);
        let disk = RecoveredDisk::from_store(&store).expect("disk");
        let (mut mw2, fx) = Middleware::recover(ReplicaId(0), disk, config, 1, 0);
        let mut store2 = store.clone();
        let mut replayed = drain(&mut mw2, fx, &mut store2);
        for t in 1..50u64 {
            let fx = mw2.on_tick(t * 100_000);
            replayed.extend(drain(&mut mw2, fx, &mut store2));
            if !mw2.is_recovering() {
                break;
            }
        }
        assert!(!mw2.is_recovering(), "single-replica recovery completes");
        // Replaying the batched record re-applies every update in its
        // original intra-batch position (the queue would panic on any
        // (slot, index) regression).
        assert_eq!(replayed, vec![1, 3, 6, 10, 15]);
        assert_eq!(mw2.state().expect("state").total, 15);
    }

    /// Regression test for the epoch fence: after a reconfiguration is
    /// delivered, protocol messages stamped with the old epoch must be
    /// dropped (and traced), newer-epoch messages dropped silently, and
    /// learning traffic must keep flowing regardless of epoch.
    #[test]
    fn reconfig_switches_epoch_and_rejects_stale_messages() {
        let config = TreplicaConfig {
            trace: TraceConfig::on(),
            ..config()
        };
        let (mut mw, mut store) = active_single_with(config);
        let _ = mw.take_trace();
        assert_eq!(mw.membership().epoch(), 0);

        let (ok, fx) = mw.execute_reconfig(vec![ReplicaId(1)], vec![], 0);
        assert!(ok, "the leader accepts a reconfig proposal");
        // Drive to completion: only messages addressed to this node loop
        // back (the new member does not exist in this test).
        let mut reconfigured = None;
        let mut queue = fx;
        while !queue.is_empty() {
            let mut next = Vec::new();
            for e in queue {
                match e {
                    MwEffect::Send {
                        to: ReplicaId(0),
                        msg,
                        ..
                    } => {
                        next.extend(mw.on_message(ReplicaId(0), msg, 0));
                    }
                    MwEffect::DiskWrite { op, token, .. } => {
                        store.apply(op);
                        next.extend(mw.on_disk_write_done(token));
                    }
                    MwEffect::Reconfigured { epoch, members, .. } => {
                        reconfigured = Some((epoch, members));
                    }
                    _ => {}
                }
            }
            queue = next;
        }
        let (epoch, members) = reconfigured.expect("reconfig decree delivered");
        assert_eq!(epoch, 1);
        assert_eq!(members, vec![ReplicaId(0), ReplicaId(1)]);
        assert_eq!(mw.membership().epoch(), 1);
        let _ = mw.take_trace();

        // A stale-epoch Accept is dropped and traced.
        let stale = MwMsg::Paxos {
            epoch: 0,
            tag: Default::default(),
            msg: Msg::Accept {
                ballot: Ballot::BOTTOM,
                slot: Slot(50),
                decree: paxos::Decree::Noop,
            },
        };
        let fx = mw.on_message(ReplicaId(1), stale, 0);
        assert!(fx.is_empty(), "stale-epoch accept produces no effects");
        let trace = mw.take_trace();
        assert!(
            trace.iter().any(|e| matches!(
                e,
                TraceEvent::StaleEpochRejected {
                    from: 1,
                    msg_epoch: 0,
                    local_epoch: 1,
                }
            )),
            "stale-epoch rejection is traced: {trace:?}"
        );

        // Messages from a newer epoch are dropped silently (this node
        // must catch up before voting under an unknown quorum rule)...
        let ahead = MwMsg::Paxos {
            epoch: 7,
            tag: Default::default(),
            msg: Msg::Accept {
                ballot: Ballot::BOTTOM,
                slot: Slot(50),
                decree: paxos::Decree::Noop,
            },
        };
        let fx = mw.on_message(ReplicaId(1), ahead, 0);
        assert!(fx.is_empty(), "ahead-epoch accept produces no effects");

        // ...and learning traffic crosses the fence in both directions.
        let learn = MwMsg::Paxos {
            epoch: 0,
            tag: Default::default(),
            msg: Msg::LearnRequest {
                from_slot: Slot::ZERO,
            },
        };
        let fx = mw.on_message(ReplicaId(1), learn, 0);
        assert!(!fx.is_empty(), "stale-epoch learn request is answered");
        let trace = mw.take_trace();
        assert!(
            trace
                .iter()
                .all(|e| !matches!(e, TraceEvent::StaleEpochRejected { .. })),
            "epoch-agnostic traffic is never rejected: {trace:?}"
        );
    }
}
