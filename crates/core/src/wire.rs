//! Compact binary encoding for durable records, checkpoints, and wire
//! size accounting.
//!
//! Treplica persists acceptor records and application checkpoints and
//! must survive a crash/replay cycle, so encodings round-trip exactly.
//! The same encoding sizes every network message, driving the
//! serialization-latency term of the simulated 1 Gbps links.
//!
//! The format is little-endian, length-prefixed, non-self-describing
//! (schema lives in the types). [`impl_wire_struct!`] and
//! [`impl_wire_enum!`] remove the per-type boilerplate.

use std::fmt;

/// Decoding error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the value was complete.
    UnexpectedEnd,
    /// An enum discriminant byte was out of range.
    BadTag(u8),
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// The bytes decoded but violate a structural invariant of the type
    /// (e.g. an empty or oversized batch).
    Invalid(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEnd => write!(f, "unexpected end of input"),
            WireError::BadTag(t) => write!(f, "invalid enum tag {t}"),
            WireError::BadUtf8 => write!(f, "invalid utf-8 in string"),
            WireError::Invalid(what) => write!(f, "structural invariant violated: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Types with a binary encoding that round-trips exactly.
pub trait Wire: Sized {
    /// Appends this value's encoding to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);
    /// Decodes a value from the front of `input`, advancing it.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the input is truncated or malformed.
    fn decode(input: &mut &[u8]) -> Result<Self, WireError>;

    /// Convenience: encode into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf
    }

    /// Convenience: decode from a complete buffer (trailing bytes are
    /// permitted and ignored).
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the buffer is truncated or malformed.
    fn from_bytes(mut input: &[u8]) -> Result<Self, WireError> {
        Self::decode(&mut input)
    }

    /// Encoded size in bytes (default: encodes and measures).
    fn wire_size(&self) -> u64 {
        self.to_bytes().len() as u64
    }
}

/// Reusable encode buffer for hot wire paths.
///
/// `Wire::to_bytes` grows a fresh `Vec` from zero capacity on every
/// call, which on the middleware's per-message persist path means a
/// chain of reallocations per record. A scratch buffer amortizes that:
/// the working buffer keeps its high-water capacity across calls, and
/// the caller receives one exact-sized allocation (`to_vec` of the
/// filled prefix) instead of a growth sequence.
#[derive(Debug, Default)]
pub struct EncodeScratch {
    buf: Vec<u8>,
}

impl EncodeScratch {
    /// A scratch with no capacity yet; it grows to the largest value
    /// encoded through it and stays there.
    pub fn new() -> Self {
        EncodeScratch::default()
    }

    /// Encodes `value` through the reused buffer, returning an
    /// exact-sized copy. Byte-for-byte identical to `value.to_bytes()`.
    pub fn encode<T: Wire>(&mut self, value: &T) -> Vec<u8> {
        self.buf.clear();
        value.encode(&mut self.buf);
        self.buf.as_slice().to_vec()
    }

    /// Current capacity of the reused working buffer.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }
}

fn take<'a>(input: &mut &'a [u8], n: usize) -> Result<&'a [u8], WireError> {
    if input.len() < n {
        return Err(WireError::UnexpectedEnd);
    }
    let (head, tail) = input.split_at(n);
    *input = tail;
    Ok(head)
}

macro_rules! impl_wire_int {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            fn encode(&self, buf: &mut Vec<u8>) {
                buf.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
                let bytes = take(input, std::mem::size_of::<$t>())?;
                // `take` returns exactly the requested length, so the
                // conversion cannot fail — but decode paths stay
                // panic-free, so route the impossible case as an error.
                let bytes = bytes.try_into().map_err(|_| WireError::UnexpectedEnd)?;
                Ok(<$t>::from_le_bytes(bytes))
            }
            fn wire_size(&self) -> u64 {
                std::mem::size_of::<$t>() as u64
            }
        }
    )*};
}

impl_wire_int!(u8, u16, u32, u64, i32, i64);

impl Wire for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(*self as u8);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(input)? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(WireError::BadTag(t)),
        }
    }
    fn wire_size(&self) -> u64 {
        1
    }
}

impl Wire for f64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let bytes = take(input, 8)?;
        let bytes = bytes.try_into().map_err(|_| WireError::UnexpectedEnd)?;
        Ok(f64::from_le_bytes(bytes))
    }
    fn wire_size(&self) -> u64 {
        8
    }
}

impl Wire for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u32).encode(buf);
        buf.extend_from_slice(self.as_bytes());
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let len = u32::decode(input)? as usize;
        let bytes = take(input, len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }
    fn wire_size(&self) -> u64 {
        4 + self.len() as u64
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u32).encode(buf);
        for item in self {
            item.encode(buf);
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let len = u32::decode(input)? as usize;
        let mut out = Vec::with_capacity(len.min(1 << 16));
        for _ in 0..len {
            out.push(T::decode(input)?);
        }
        Ok(out)
    }
    fn wire_size(&self) -> u64 {
        4 + self.iter().map(Wire::wire_size).sum::<u64>()
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(input)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(input)?)),
            t => Err(WireError::BadTag(t)),
        }
    }
    fn wire_size(&self) -> u64 {
        1 + self.as_ref().map(Wire::wire_size).unwrap_or(0)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok((A::decode(input)?, B::decode(input)?))
    }
    fn wire_size(&self) -> u64 {
        self.0.wire_size() + self.1.wire_size()
    }
}

/// Implements [`Wire`] for a struct by listing its fields in order.
///
/// ```
/// use treplica::{impl_wire_struct, Wire};
/// #[derive(Debug, PartialEq)]
/// struct Point { x: u32, y: u32 }
/// impl_wire_struct!(Point { x, y });
/// let p = Point { x: 1, y: 2 };
/// assert_eq!(Point::from_bytes(&p.to_bytes()).unwrap(), p);
/// ```
#[macro_export]
macro_rules! impl_wire_struct {
    ($name:ident { $($field:ident),* $(,)? }) => {
        impl $crate::Wire for $name {
            fn encode(&self, buf: &mut Vec<u8>) {
                $( $crate::Wire::encode(&self.$field, buf); )*
            }
            fn decode(input: &mut &[u8]) -> Result<Self, $crate::WireError> {
                Ok($name {
                    $( $field: $crate::Wire::decode(input)?, )*
                })
            }
            fn wire_size(&self) -> u64 {
                0 $( + $crate::Wire::wire_size(&self.$field) )*
            }
        }
    };
}

/// Implements [`Wire`] for an enum of struct-like or unit variants.
///
/// ```
/// use treplica::{impl_wire_enum, Wire};
/// #[derive(Debug, PartialEq)]
/// enum Cmd { Ping, Set { key: u32, val: u64 } }
/// impl_wire_enum!(Cmd { 0 => Ping, 1 => Set { key, val } });
/// let c = Cmd::Set { key: 7, val: 9 };
/// assert_eq!(Cmd::from_bytes(&c.to_bytes()).unwrap(), c);
/// ```
#[macro_export]
macro_rules! impl_wire_enum {
    ($name:ident { $($tag:literal => $variant:ident $({ $($field:ident),* $(,)? })?),* $(,)? }) => {
        impl $crate::Wire for $name {
            fn encode(&self, buf: &mut Vec<u8>) {
                match self {
                    $( $name::$variant $({ $($field),* })? => {
                        buf.push($tag);
                        $( $( $crate::Wire::encode($field, buf); )* )?
                    } )*
                }
            }
            fn decode(input: &mut &[u8]) -> Result<Self, $crate::WireError> {
                let Some((&tag, rest)) = input.split_first() else {
                    return Err($crate::WireError::UnexpectedEnd);
                };
                *input = rest;
                match tag {
                    $( $tag => Ok($name::$variant $({ $($field: $crate::Wire::decode(input)?),* })?), )*
                    t => Err($crate::WireError::BadTag(t)),
                }
            }
            fn wire_size(&self) -> u64 {
                match self {
                    $( $name::$variant $({ $($field),* })? => {
                        1 $( $( + $crate::Wire::wire_size($field) )* )?
                    } )*
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        assert_eq!(bytes.len() as u64, v.wire_size(), "wire_size mismatch");
        assert_eq!(T::from_bytes(&bytes).unwrap(), v);
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(0u8);
        roundtrip(u16::MAX);
        roundtrip(123_456u32);
        roundtrip(u64::MAX - 1);
        roundtrip(-42i32);
        roundtrip(i64::MIN);
        roundtrip(true);
        roundtrip(false);
        roundtrip(3.5f64);
    }

    #[test]
    fn string_and_collections_roundtrip() {
        roundtrip(String::from("hello wörld"));
        roundtrip(String::new());
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<u32>::new());
        roundtrip(Some(9u32));
        roundtrip(Option::<u32>::None);
        roundtrip((7u32, String::from("x")));
        roundtrip(vec![Some(1u8), None, Some(3)]);
    }

    #[test]
    fn truncated_input_errors() {
        assert_eq!(u64::from_bytes(&[1, 2, 3]), Err(WireError::UnexpectedEnd));
        let s = String::from("abcdef").to_bytes();
        assert_eq!(String::from_bytes(&s[..5]), Err(WireError::UnexpectedEnd));
    }

    #[test]
    fn empty_input_errors_on_every_tagged_decode() {
        // Regression: tag decoding indexed `input[0]`; on adversarially
        // truncated bytes that panicked the decoder instead of returning
        // a typed error. All tag reads now go through checked access.
        assert_eq!(bool::from_bytes(&[]), Err(WireError::UnexpectedEnd));
        assert_eq!(Option::<u8>::from_bytes(&[]), Err(WireError::UnexpectedEnd));
        assert_eq!(u8::from_bytes(&[]), Err(WireError::UnexpectedEnd));
        assert_eq!(f64::from_bytes(&[]), Err(WireError::UnexpectedEnd));
        // Present-tag Option whose payload is missing.
        assert_eq!(
            Option::<u32>::from_bytes(&[1]),
            Err(WireError::UnexpectedEnd)
        );
    }

    #[test]
    fn invalid_tags_error() {
        assert_eq!(bool::from_bytes(&[7]), Err(WireError::BadTag(7)));
        assert_eq!(Option::<u8>::from_bytes(&[9]), Err(WireError::BadTag(9)));
    }

    #[test]
    fn invalid_utf8_errors() {
        let mut buf = Vec::new();
        2u32.encode(&mut buf);
        buf.extend_from_slice(&[0xff, 0xfe]);
        assert_eq!(String::from_bytes(&buf), Err(WireError::BadUtf8));
    }

    #[derive(Debug, PartialEq)]
    struct Demo {
        a: u32,
        b: String,
        c: Vec<u64>,
    }
    impl_wire_struct!(Demo { a, b, c });

    #[derive(Debug, PartialEq)]
    enum DemoEnum {
        Unit,
        Pair { x: u8, y: u8 },
        Wrapped { inner: String },
    }
    impl_wire_enum!(DemoEnum {
        0 => Unit,
        1 => Pair { x, y },
        2 => Wrapped { inner },
    });

    #[test]
    fn derived_struct_roundtrips() {
        roundtrip(Demo {
            a: 1,
            b: "two".into(),
            c: vec![3, 4],
        });
    }

    #[test]
    fn derived_enum_roundtrips() {
        roundtrip(DemoEnum::Unit);
        roundtrip(DemoEnum::Pair { x: 1, y: 2 });
        roundtrip(DemoEnum::Wrapped {
            inner: "abc".into(),
        });
        assert_eq!(DemoEnum::from_bytes(&[9]), Err(WireError::BadTag(9)));
    }

    #[test]
    fn trailing_bytes_tolerated_by_from_bytes() {
        let mut bytes = 5u32.to_bytes();
        bytes.push(0xAA);
        assert_eq!(u32::from_bytes(&bytes).unwrap(), 5);
    }

    #[test]
    fn scratch_encode_matches_to_bytes() {
        let mut scratch = EncodeScratch::new();
        let big = Demo {
            a: 7,
            b: "x".repeat(300),
            c: (0..200).collect(),
        };
        let small = Demo {
            a: 8,
            b: "y".into(),
            c: vec![1],
        };
        assert_eq!(scratch.encode(&big), big.to_bytes());
        let high_water = scratch.capacity();
        // A smaller value reuses the buffer without shrinking it and
        // still produces the canonical bytes.
        assert_eq!(scratch.encode(&small), small.to_bytes());
        assert_eq!(scratch.capacity(), high_water);
        // The returned copy is exact-sized, not the working buffer.
        let out = scratch.encode(&small);
        assert_eq!(out.len(), out.capacity());
    }
}
