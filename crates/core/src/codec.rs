//! [`Wire`] encodings for the consensus types.
//!
//! The durable log stores encoded [`Record`]s (slot-first layout for
//! `Accepted` so the checkpoint-truncation scan can cheaply find the cut
//! point), and outgoing protocol messages are sized with
//! [`Wire::wire_size`] to charge serialization latency on the simulated
//! network.

use paxos::{
    AcceptedReport, Ballot, BallotClass, Batch, CausalTag, Decree, Msg, ProposalId, Reconfig,
    Record, ReplicaId, Slot,
};

use crate::wire::{Wire, WireError};

/// Hard wire-format cap on updates per batch. Protects decoders from a
/// corrupt length prefix; far above any useful `batch_max_updates`.
pub const MAX_BATCH_ITEMS: usize = 4_096;

/// Batch framing: a length-prefixed item vector. Decoding enforces the
/// batch invariants — never empty (an empty batch would burn a slot and
/// a seek for nothing) and never above [`MAX_BATCH_ITEMS`].
impl<A: Wire> Wire for Batch<A> {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.items.encode(buf);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let items: Vec<(ProposalId, A)> = Vec::decode(input)?;
        if items.is_empty() {
            return Err(WireError::Invalid("empty batch"));
        }
        if items.len() > MAX_BATCH_ITEMS {
            return Err(WireError::Invalid("batch exceeds MAX_BATCH_ITEMS"));
        }
        Ok(Batch { items })
    }
    fn wire_size(&self) -> u64 {
        self.items.wire_size()
    }
}

impl Wire for Slot {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(Slot(u64::decode(input)?))
    }
    fn wire_size(&self) -> u64 {
        8
    }
}

impl Wire for Ballot {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.round.encode(buf);
        self.node.0.encode(buf);
        buf.push(match self.class {
            BallotClass::Classic => 0,
            BallotClass::Fast => 1,
        });
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let round = u64::decode(input)?;
        let node = paxos::ReplicaId(u32::decode(input)?);
        let class = match u8::decode(input)? {
            0 => BallotClass::Classic,
            1 => BallotClass::Fast,
            t => return Err(WireError::BadTag(t)),
        };
        Ok(Ballot { round, node, class })
    }
    fn wire_size(&self) -> u64 {
        13
    }
}

impl Wire for ProposalId {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.node.0.encode(buf);
        self.epoch.encode(buf);
        self.seq.encode(buf);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(ProposalId {
            node: paxos::ReplicaId(u32::decode(input)?),
            epoch: u64::decode(input)?,
            seq: u64::decode(input)?,
        })
    }
    fn wire_size(&self) -> u64 {
        20
    }
}

impl Wire for ReplicaId {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(ReplicaId(u32::decode(input)?))
    }
    fn wire_size(&self) -> u64 {
        4
    }
}

/// Fixed-size causal provenance stamp carried by every protocol
/// message (see `paxos::CausalTag`): origin, monotone send counter,
/// and slot/round provenance, `u64::MAX` marking "none".
impl Wire for CausalTag {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.origin.encode(buf);
        self.seq.encode(buf);
        self.slot.encode(buf);
        self.round.encode(buf);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(CausalTag {
            origin: u32::decode(input)?,
            seq: u64::decode(input)?,
            slot: u64::decode(input)?,
            round: u64::decode(input)?,
        })
    }
    fn wire_size(&self) -> u64 {
        CausalTag::WIRE_SIZE
    }
}

impl Wire for Reconfig {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.epoch.encode(buf);
        self.add.encode(buf);
        self.remove.encode(buf);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(Reconfig {
            epoch: u64::decode(input)?,
            add: Vec::decode(input)?,
            remove: Vec::decode(input)?,
        })
    }
    fn wire_size(&self) -> u64 {
        self.epoch.wire_size() + self.add.wire_size() + self.remove.wire_size()
    }
}

impl<A: Wire> Wire for Decree<A> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Decree::Noop => buf.push(0),
            Decree::Value(pid, a) => {
                buf.push(1);
                pid.encode(buf);
                a.encode(buf);
            }
            Decree::Reconfig(rc) => {
                buf.push(2);
                rc.encode(buf);
            }
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(input)? {
            0 => Ok(Decree::Noop),
            1 => Ok(Decree::Value(ProposalId::decode(input)?, A::decode(input)?)),
            2 => Ok(Decree::Reconfig(Reconfig::decode(input)?)),
            t => Err(WireError::BadTag(t)),
        }
    }
    fn wire_size(&self) -> u64 {
        match self {
            Decree::Noop => 1,
            Decree::Value(pid, a) => 1 + pid.wire_size() + a.wire_size(),
            Decree::Reconfig(rc) => 1 + rc.wire_size(),
        }
    }
}

/// Layout note: `Accepted` records lead with the slot so the checkpoint
/// truncation scan can decode just the prefix (`tag + slot`).
impl<A: Wire> Wire for Record<A> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Record::Promised(b) => {
                buf.push(0);
                b.encode(buf);
            }
            Record::Accepted {
                ballot,
                slot,
                decree,
            } => {
                buf.push(1);
                slot.encode(buf);
                ballot.encode(buf);
                decree.encode(buf);
            }
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(input)? {
            0 => Ok(Record::Promised(Ballot::decode(input)?)),
            1 => {
                let slot = Slot::decode(input)?;
                let ballot = Ballot::decode(input)?;
                let decree = Decree::decode(input)?;
                Ok(Record::Accepted {
                    ballot,
                    slot,
                    decree,
                })
            }
            t => Err(WireError::BadTag(t)),
        }
    }
    fn wire_size(&self) -> u64 {
        match self {
            Record::Promised(b) => 1 + b.wire_size(),
            Record::Accepted {
                ballot,
                slot,
                decree,
            } => 1 + slot.wire_size() + ballot.wire_size() + decree.wire_size(),
        }
    }
}

/// Decodes only the slot of an encoded record, if it is an `Accepted`
/// entry (used by the log-truncation scan).
pub fn record_slot(entry: &[u8]) -> Option<Slot> {
    let mut input = entry;
    match u8::decode(&mut input).ok()? {
        1 => Slot::decode(&mut input).ok(),
        _ => None,
    }
}

impl<A: Wire> Wire for AcceptedReport<A> {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.slot.encode(buf);
        self.ballot.encode(buf);
        self.decree.encode(buf);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(AcceptedReport {
            slot: Slot::decode(input)?,
            ballot: Ballot::decode(input)?,
            decree: Decree::decode(input)?,
        })
    }
    fn wire_size(&self) -> u64 {
        self.slot.wire_size() + self.ballot.wire_size() + self.decree.wire_size()
    }
}

impl<A: Wire> Wire for Msg<A> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Msg::Prepare {
                ballot,
                from_slot,
                only_slot,
            } => {
                buf.push(0);
                ballot.encode(buf);
                from_slot.encode(buf);
                only_slot.encode(buf);
            }
            Msg::Promise {
                ballot,
                from_slot,
                only_slot,
                accepted,
            } => {
                buf.push(1);
                ballot.encode(buf);
                from_slot.encode(buf);
                only_slot.encode(buf);
                accepted.encode(buf);
            }
            Msg::Accept {
                ballot,
                slot,
                decree,
            } => {
                buf.push(2);
                ballot.encode(buf);
                slot.encode(buf);
                decree.encode(buf);
            }
            Msg::Any { ballot, from_slot } => {
                buf.push(3);
                ballot.encode(buf);
                from_slot.encode(buf);
            }
            Msg::FastPropose { pid, value } => {
                buf.push(4);
                pid.encode(buf);
                value.encode(buf);
            }
            Msg::Propose { pid, value } => {
                buf.push(5);
                pid.encode(buf);
                value.encode(buf);
            }
            Msg::Accepted {
                ballot,
                slot,
                decree,
            } => {
                buf.push(6);
                ballot.encode(buf);
                slot.encode(buf);
                decree.encode(buf);
            }
            Msg::Alive {
                ballot,
                decided_upto,
            } => {
                buf.push(7);
                ballot.encode(buf);
                decided_upto.encode(buf);
            }
            Msg::LearnRequest { from_slot } => {
                buf.push(8);
                from_slot.encode(buf);
            }
            Msg::LearnReply {
                entries,
                truncated_below,
                decided_upto,
            } => {
                buf.push(9);
                entries.encode(buf);
                truncated_below.encode(buf);
                decided_upto.encode(buf);
            }
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(input)? {
            0 => Ok(Msg::Prepare {
                ballot: Ballot::decode(input)?,
                from_slot: Slot::decode(input)?,
                only_slot: Option::decode(input)?,
            }),
            1 => Ok(Msg::Promise {
                ballot: Ballot::decode(input)?,
                from_slot: Slot::decode(input)?,
                only_slot: Option::decode(input)?,
                accepted: Vec::decode(input)?,
            }),
            2 => Ok(Msg::Accept {
                ballot: Ballot::decode(input)?,
                slot: Slot::decode(input)?,
                decree: Decree::decode(input)?,
            }),
            3 => Ok(Msg::Any {
                ballot: Ballot::decode(input)?,
                from_slot: Slot::decode(input)?,
            }),
            4 => Ok(Msg::FastPropose {
                pid: ProposalId::decode(input)?,
                value: A::decode(input)?,
            }),
            5 => Ok(Msg::Propose {
                pid: ProposalId::decode(input)?,
                value: A::decode(input)?,
            }),
            6 => Ok(Msg::Accepted {
                ballot: Ballot::decode(input)?,
                slot: Slot::decode(input)?,
                decree: Decree::decode(input)?,
            }),
            7 => Ok(Msg::Alive {
                ballot: Ballot::decode(input)?,
                decided_upto: Slot::decode(input)?,
            }),
            8 => Ok(Msg::LearnRequest {
                from_slot: Slot::decode(input)?,
            }),
            9 => Ok(Msg::LearnReply {
                entries: Vec::decode(input)?,
                truncated_below: Slot::decode(input)?,
                decided_upto: Slot::decode(input)?,
            }),
            t => Err(WireError::BadTag(t)),
        }
    }
    fn wire_size(&self) -> u64 {
        // 1-byte tag + fields; computed structurally to avoid encoding.
        match self {
            Msg::Prepare {
                ballot,
                from_slot,
                only_slot,
            } => 1 + ballot.wire_size() + from_slot.wire_size() + only_slot.wire_size(),
            Msg::Promise {
                ballot,
                from_slot,
                only_slot,
                accepted,
            } => {
                1 + ballot.wire_size()
                    + from_slot.wire_size()
                    + only_slot.wire_size()
                    + accepted.wire_size()
            }
            Msg::Accept {
                ballot,
                slot,
                decree,
            } => 1 + ballot.wire_size() + slot.wire_size() + decree.wire_size(),
            Msg::Any { ballot, from_slot } => 1 + ballot.wire_size() + from_slot.wire_size(),
            Msg::FastPropose { pid, value } | Msg::Propose { pid, value } => {
                1 + pid.wire_size() + value.wire_size()
            }
            Msg::Accepted {
                ballot,
                slot,
                decree,
            } => 1 + ballot.wire_size() + slot.wire_size() + decree.wire_size(),
            Msg::Alive {
                ballot,
                decided_upto,
            } => 1 + ballot.wire_size() + decided_upto.wire_size(),
            Msg::LearnRequest { from_slot } => 1 + from_slot.wire_size(),
            Msg::LearnReply {
                entries,
                truncated_below,
                decided_upto,
            } => 1 + entries.wire_size() + truncated_below.wire_size() + decided_upto.wire_size(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paxos::ReplicaId;

    fn pid(n: u32, seq: u64) -> ProposalId {
        ProposalId {
            node: ReplicaId(n),
            epoch: 2,
            seq,
        }
    }

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        assert_eq!(bytes.len() as u64, v.wire_size(), "wire_size mismatch");
        assert_eq!(T::from_bytes(&bytes).unwrap(), v);
    }

    #[test]
    fn consensus_primitives_roundtrip() {
        roundtrip(Slot(42));
        roundtrip(Ballot::classic(7, ReplicaId(3)));
        roundtrip(Ballot::fast(9, ReplicaId(0)));
        roundtrip(pid(1, 5));
        roundtrip(Decree::<u64>::Noop);
        roundtrip(Decree::Value(pid(0, 1), 99u64));
        roundtrip(Decree::<u64>::Reconfig(Reconfig {
            epoch: 3,
            add: vec![ReplicaId(5), ReplicaId(6)],
            remove: vec![ReplicaId(0)],
        }));
        roundtrip(Decree::<u64>::Reconfig(Reconfig {
            epoch: 1,
            add: vec![],
            remove: vec![ReplicaId(4)],
        }));
    }

    #[test]
    fn causal_tags_roundtrip() {
        roundtrip(CausalTag {
            origin: 3,
            seq: 123_456,
            slot: 42,
            round: 7,
        });
        // The sentinel for slot-less kinds survives the wire.
        roundtrip(CausalTag::default());
        assert_eq!(CausalTag::default().wire_size(), 28);
    }

    #[test]
    fn records_roundtrip() {
        roundtrip(Record::<u64>::Promised(Ballot::fast(1, ReplicaId(2))));
        roundtrip(Record::Accepted {
            ballot: Ballot::classic(3, ReplicaId(1)),
            slot: Slot(17),
            decree: Decree::Value(pid(4, 4), 1234u64),
        });
    }

    #[test]
    fn record_slot_prefix_scan() {
        let rec = Record::Accepted {
            ballot: Ballot::classic(3, ReplicaId(1)),
            slot: Slot(17),
            decree: Decree::Value(pid(4, 4), 1234u64),
        };
        assert_eq!(record_slot(&rec.to_bytes()), Some(Slot(17)));
        let promised = Record::<u64>::Promised(Ballot::classic(1, ReplicaId(0)));
        assert_eq!(record_slot(&promised.to_bytes()), None);
        assert_eq!(record_slot(&[]), None);
    }

    #[test]
    fn all_message_variants_roundtrip() {
        let b = Ballot::fast(4, ReplicaId(2));
        let msgs: Vec<Msg<u64>> = vec![
            Msg::Prepare {
                ballot: b,
                from_slot: Slot(1),
                only_slot: Some(Slot(1)),
            },
            Msg::Promise {
                ballot: b,
                from_slot: Slot(0),
                only_slot: None,
                accepted: vec![AcceptedReport {
                    slot: Slot(2),
                    ballot: b,
                    decree: Decree::Value(pid(0, 9), 5),
                }],
            },
            Msg::Accept {
                ballot: b,
                slot: Slot(3),
                decree: Decree::Noop,
            },
            Msg::Any {
                ballot: b,
                from_slot: Slot(4),
            },
            Msg::FastPropose {
                pid: pid(1, 1),
                value: 8,
            },
            Msg::Propose {
                pid: pid(1, 2),
                value: 9,
            },
            Msg::Accepted {
                ballot: b,
                slot: Slot(5),
                decree: Decree::Value(pid(2, 2), 10),
            },
            Msg::Alive {
                ballot: b,
                decided_upto: Slot(6),
            },
            Msg::LearnRequest { from_slot: Slot(7) },
            Msg::LearnReply {
                entries: vec![(Slot(8), Decree::Value(pid(3, 3), 11))],
                truncated_below: Slot(2),
                decided_upto: Slot(9),
            },
        ];
        for m in msgs {
            roundtrip(m);
        }
    }

    #[test]
    fn wire_sizes_are_realistic() {
        // A fast-path proposal of a small action should be well under the
        // 1500-byte Ethernet MTU; a heartbeat a few dozen bytes.
        let m: Msg<u64> = Msg::FastPropose {
            pid: pid(0, 0),
            value: 1,
        };
        assert!(m.wire_size() < 64);
        let hb: Msg<u64> = Msg::Alive {
            ballot: Ballot::BOTTOM,
            decided_upto: Slot(0),
        };
        assert!(hb.wire_size() < 32);
    }
}
