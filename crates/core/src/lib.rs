//! # treplica — replication middleware (persistent queue + state machine)
//!
//! Rust reproduction of **Treplica**, the middleware at the core of
//! *"Dynamic Content Web Applications: Crash, Failover, and Recovery
//! Analysis"* (DSN 2009). Treplica turns a deterministic application
//! into a replicated, crash-recoverable service through two cooperating
//! abstractions (paper §2):
//!
//! * the **asynchronous persistent queue** — a totally ordered,
//!   durable collection of actions implemented with Paxos and Fast
//!   Paxos ([`PersistentQueue`] is the delivery-side view);
//! * the **replicated state machine** — the application implements
//!   [`Application`] (deterministic `apply`, `snapshot`, `restore`) and
//!   the middleware handles ordering, durability, checkpoints and
//!   autonomous recovery ([`Middleware`]).
//!
//! Recovery (§2) is fully transparent: on restart the node reloads its
//! newest checkpoint from disk *in parallel with* re-learning the
//! missed queue suffix from the live replicas, then resumes as if it
//! had never crashed.
//!
//! The crate is sans-io like its `paxos` core: drivers feed events and
//! apply [`MwEffect`]s. The `cluster` crate runs it on the `simnet`
//! simulated testbed.
//!
//! ## Example: a replicated counter
//!
//! ```
//! use treplica::{Application, Middleware, Snapshot, TreplicaConfig, Wire, WireError};
//!
//! #[derive(Debug)]
//! struct Counter { total: u64 }
//! impl Application for Counter {
//!     type Action = u64;
//!     type Reply = u64;
//!     fn apply(&mut self, action: &u64) -> u64 { self.total += action; self.total }
//!     fn snapshot(&self) -> Snapshot { Snapshot::exact(self.total.to_bytes()) }
//!     fn restore(data: &[u8]) -> Result<Self, WireError> {
//!         Ok(Counter { total: u64::from_bytes(data)? })
//!     }
//! }
//!
//! let mut node = Middleware::new(paxos::ReplicaId(0), Counter { total: 0 },
//!                                TreplicaConfig::lan(1), 0);
//! // Tick once: the single-replica ensemble elects itself.
//! let _fx = node.on_tick(0);
//! let (_pid, _fx) = node.execute(41, 0).expect("active");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod app;
mod codec;
mod middleware;
mod queue;
pub mod runtime;
mod wire;

pub use app::{Application, Snapshot};
pub use codec::{record_slot, MAX_BATCH_ITEMS};
pub use middleware::{
    Meta, Middleware, MwEffect, MwMsg, MwStatus, RecoveredDisk, StillRecovering, TreplicaConfig,
    LOG_NAME, META_KEY,
};
pub use queue::{PersistentQueue, QueueEntry};
pub use runtime::{LocalCluster, ReplicaHandle};
pub use wire::{EncodeScratch, Wire, WireError};
