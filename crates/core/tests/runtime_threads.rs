//! Tests of the threaded (wall-clock) runtime: the paper's blocking
//! `execute()` interface on real threads.

// Wall-clock time is the point of this test target.
#![allow(clippy::disallowed_methods)]

use std::time::Duration;

use treplica::runtime::LocalCluster;
use treplica::{Application, Snapshot, TreplicaConfig, Wire, WireError};

#[derive(Debug, Clone, PartialEq, Eq)]
struct Ledger {
    entries: Vec<u64>,
}

impl Application for Ledger {
    type Action = u64;
    type Reply = usize;
    fn apply(&mut self, action: &u64) -> usize {
        self.entries.push(*action);
        self.entries.len()
    }
    fn snapshot(&self) -> Snapshot {
        Snapshot::exact(self.entries.to_bytes())
    }
    fn restore(data: &[u8]) -> Result<Self, WireError> {
        Ok(Ledger {
            entries: Vec::from_bytes(data)?,
        })
    }
}

fn fast_config(n: usize) -> TreplicaConfig {
    let mut config = TreplicaConfig::lan(n);
    // Wall-clock tests: tighten timeouts so elections settle quickly.
    config.paxos.heartbeat_interval_us = 10_000;
    config.paxos.fd_timeout_us = 50_000;
    config.paxos.prepare_grace_us = 20_000;
    config.paxos.collision_timeout_us = 20_000;
    config.paxos.propose_retry_us = 200_000;
    config.checkpoint_interval = 10;
    config
}

fn wait_until(deadline: Duration, mut check: impl FnMut() -> bool) -> bool {
    let start = std::time::Instant::now();
    while start.elapsed() < deadline {
        if check() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    false
}

#[test]
fn blocking_execute_applies_everywhere() {
    let cluster = LocalCluster::spawn(3, fast_config(3), Duration::from_millis(5), || Ledger {
        entries: Vec::new(),
    });
    let h0 = cluster.handle(0);
    // Blocking semantics: when execute returns, the effect is visible
    // locally (the reply is the post-apply ledger length).
    assert!(
        wait_until(Duration::from_secs(10), || h0.execute(7).is_ok()),
        "ensemble must become active"
    );
    let len = cluster.handle(1).execute(9).expect("active");
    assert!(len >= 1);
    // All replicas converge to the same ledger.
    assert!(wait_until(Duration::from_secs(10), || {
        let views: Vec<Option<Vec<u64>>> = (0..3)
            .map(|i| cluster.handle(i).query(|l| l.entries.clone()))
            .collect();
        views.iter().all(|v| v.as_deref() == views[0].as_deref())
            && views[0].as_ref().map(|v| v.len()) == Some(2)
    }));
    cluster.shutdown();
}

#[test]
fn concurrent_clients_from_many_threads() {
    let cluster = LocalCluster::spawn(3, fast_config(3), Duration::from_millis(5), || Ledger {
        entries: Vec::new(),
    });
    assert!(wait_until(Duration::from_secs(10), || cluster
        .handle(0)
        .execute(0)
        .is_ok()));
    let mut joins = Vec::new();
    for t in 0..6u64 {
        let h = cluster.handle((t % 3) as usize);
        joins.push(std::thread::spawn(move || {
            for k in 0..10u64 {
                h.execute(t * 100 + k).expect("execute");
            }
        }));
    }
    for j in joins {
        j.join().expect("client thread");
    }
    // 1 warm-up + 60 client entries, identical everywhere.
    assert!(
        wait_until(Duration::from_secs(10), || {
            let views: Vec<Option<Vec<u64>>> = (0..3)
                .map(|i| cluster.handle(i).query(|l| l.entries.clone()))
                .collect();
            views.iter().all(|v| v.is_some())
                && views.iter().all(|v| v.as_deref() == views[0].as_deref())
                && views[0].as_ref().map(|v| v.len()) == Some(61)
        }),
        "replicas must converge on 61 entries"
    );
    cluster.shutdown();
}

#[test]
fn crash_recover_preserves_ledger() {
    let cluster = LocalCluster::spawn(3, fast_config(3), Duration::from_millis(5), || Ledger {
        entries: Vec::new(),
    });
    let h0 = cluster.handle(0);
    assert!(wait_until(Duration::from_secs(10), || h0
        .execute(1)
        .is_ok()));
    for v in 2..=20u64 {
        h0.execute(v).expect("active");
    }
    // Crash replica 2; the majority keeps committing.
    let h2 = cluster.handle(2);
    h2.crash();
    assert!(
        h2.query(|l| l.entries.len()).is_none(),
        "crashed replica has no state"
    );
    for v in 21..=30u64 {
        h0.execute(v).expect("majority still live");
    }
    // Recover: checkpoint + backlog replay bring it level.
    h2.recover();
    assert!(
        wait_until(Duration::from_secs(15), || h2.is_recovered()),
        "recovery must complete"
    );
    assert!(
        wait_until(Duration::from_secs(10), || {
            h2.query(|l| l.entries.len()) == Some(30)
        }),
        "recovered replica must hold all 30 entries"
    );
    let recovered = h2.query(|l| l.entries.clone()).unwrap();
    let reference = h0.query(|l| l.entries.clone()).unwrap();
    assert_eq!(recovered, reference);
    cluster.shutdown();
}

#[test]
fn execute_fails_cleanly_while_crashed() {
    let cluster = LocalCluster::spawn(3, fast_config(3), Duration::from_millis(5), || Ledger {
        entries: Vec::new(),
    });
    let h1 = cluster.handle(1);
    assert!(wait_until(Duration::from_secs(10), || h1
        .execute(1)
        .is_ok()));
    h1.crash();
    assert!(h1.execute(2).is_err(), "crashed replica rejects executes");
    h1.recover();
    assert!(wait_until(Duration::from_secs(15), || h1
        .execute(3)
        .is_ok()));
    cluster.shutdown();
}
