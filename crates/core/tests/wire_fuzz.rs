//! Decode-robustness property tests: no byte sequence may panic a
//! decoder (malformed log entries and wire data must fail cleanly).

use proptest::prelude::*;

use paxos::{Msg, Record};
use robuststore::Action;
use tpcw::Overlay;
use treplica::{Meta, Wire};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn record_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Record::<Action>::from_bytes(&bytes);
    }

    #[test]
    fn msg_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Msg::<Action>::from_bytes(&bytes);
    }

    #[test]
    fn action_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Action::from_bytes(&bytes);
    }

    #[test]
    fn overlay_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Overlay::from_bytes(&bytes);
    }

    #[test]
    fn meta_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = Meta::from_bytes(&bytes);
    }

    /// Truncating a valid encoding at any point errors, never panics —
    /// the torn-write case for the durable log.
    #[test]
    fn torn_records_fail_cleanly(cut in 0usize..100) {
        let record: Record<Action> = Record::Accepted {
            ballot: paxos::Ballot::fast(3, paxos::ReplicaId(1)),
            slot: paxos::Slot(99),
            decree: paxos::Decree::Value(
                paxos::ProposalId { node: paxos::ReplicaId(1), epoch: 2, seq: 3 },
                Action::RefreshSession { customer: tpcw::CustomerId(5), now: 77 },
            ),
        };
        let bytes = record.to_bytes();
        let cut = cut.min(bytes.len());
        if cut < bytes.len() {
            prop_assert!(Record::<Action>::from_bytes(&bytes[..cut]).is_err());
        } else {
            prop_assert!(Record::<Action>::from_bytes(&bytes).is_ok());
        }
    }
}
