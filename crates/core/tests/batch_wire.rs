//! Group-commit batch framing: round-trip, invariant-rejection and
//! determinism properties for the `Batch<V>` wire format.

use proptest::prelude::*;

use paxos::{Batch, ProposalId, ReplicaId};
use robuststore::Action;
use tpcw::CustomerId;
use treplica::{Wire, WireError, MAX_BATCH_ITEMS};

fn pid(node: u32, seq: u64) -> ProposalId {
    ProposalId {
        node: ReplicaId(node),
        epoch: 0,
        seq,
    }
}

fn action(seq: u64) -> Action {
    Action::RefreshSession {
        customer: CustomerId(seq as u32),
        now: seq,
    }
}

#[test]
fn empty_batch_rejected_on_decode() {
    // An empty batch cannot be constructed (`Batch::new` panics), so
    // encode its framing by hand: a zero-length item vector.
    let bytes = Vec::<(ProposalId, Action)>::new().to_bytes();
    match Batch::<Action>::from_bytes(&bytes) {
        Err(WireError::Invalid(reason)) => assert!(reason.contains("empty")),
        other => panic!("empty batch must be rejected, got {other:?}"),
    }
}

#[test]
fn oversized_batch_rejected_on_decode() {
    let items: Vec<(ProposalId, Action)> = (0..=MAX_BATCH_ITEMS as u64)
        .map(|s| (pid(0, s), action(s)))
        .collect();
    assert_eq!(items.len(), MAX_BATCH_ITEMS + 1);
    let bytes = items.to_bytes();
    match Batch::<Action>::from_bytes(&bytes) {
        Err(WireError::Invalid(reason)) => assert!(reason.contains("MAX_BATCH_ITEMS")),
        other => panic!("oversized batch must be rejected, got {other:?}"),
    }
}

#[test]
fn max_size_batch_round_trips() {
    let items: Vec<(ProposalId, Action)> = (0..MAX_BATCH_ITEMS as u64)
        .map(|s| (pid(1, s), action(s)))
        .collect();
    let batch = Batch::new(items);
    let bytes = batch.to_bytes();
    let decoded = Batch::<Action>::from_bytes(&bytes).expect("max-size batch decodes");
    assert_eq!(decoded.len(), MAX_BATCH_ITEMS);
    assert_eq!(decoded, batch);
}

#[test]
fn single_item_batch_round_trips() {
    let batch = Batch::single(pid(3, 7), action(7));
    let decoded = Batch::<Action>::from_bytes(&batch.to_bytes()).expect("decodes");
    assert_eq!(decoded, batch);
}

fn arb_batch() -> impl Strategy<Value = Batch<Action>> {
    proptest::collection::vec((0u32..8, 0u64..1_000_000), 1..64).prop_map(|raw| {
        Batch::new(
            raw.into_iter()
                .map(|(node, seq)| (pid(node, seq), action(seq)))
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every well-formed batch survives a round trip with item order
    /// intact (the total order inside a slot is the item order).
    #[test]
    fn batch_round_trip_preserves_order(batch in arb_batch()) {
        let decoded = Batch::<Action>::from_bytes(&batch.to_bytes()).unwrap();
        prop_assert_eq!(decoded, batch);
    }

    /// Encoding is a pure function of the batch — re-encoding the same
    /// or a decoded copy is bit-identical, whatever seed generated it
    /// (replicas must produce identical log records for identical
    /// decrees).
    #[test]
    fn batch_encoding_bit_identical(batch in arb_batch()) {
        let a = batch.to_bytes();
        let b = batch.to_bytes();
        prop_assert_eq!(&a, &b);
        let decoded = Batch::<Action>::from_bytes(&a).unwrap();
        prop_assert_eq!(decoded.to_bytes(), a);
    }

    /// No byte soup may panic the batch decoder (torn log tails, corrupt
    /// wire data).
    #[test]
    fn batch_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Batch::<Action>::from_bytes(&bytes);
    }

    /// Truncating a valid batch encoding at any point errors cleanly.
    #[test]
    fn torn_batch_fails_cleanly(cut in 0usize..200) {
        let batch = Batch::new(vec![
            (pid(0, 0), action(0)),
            (pid(1, 1), action(1)),
            (pid(2, 2), action(2)),
        ]);
        let bytes = batch.to_bytes();
        let cut = cut.min(bytes.len());
        if cut < bytes.len() {
            prop_assert!(Batch::<Action>::from_bytes(&bytes[..cut]).is_err());
        } else {
            prop_assert!(Batch::<Action>::from_bytes(&bytes).is_ok());
        }
    }
}
