//! Middleware-on-simnet integration tests: the full Treplica stack —
//! consensus, durable log with real write latencies, checkpoints,
//! crash/restart with checkpoint-load + backlog-replay recovery —
//! driven by the discrete-event engine.

use paxos::{Batch, Mode, ProposalId, ReplicaId};
use simnet::{Engine, Event, NodeId, SimConfig, SimDuration, SimTime};
use treplica::{
    Application, Middleware, MwEffect, MwMsg, RecoveredDisk, Snapshot, TreplicaConfig, Wire,
    WireError,
};

/// Replicated register log: applies (key, value) writes; state is the
/// full history length plus a checksum, enough to detect divergence.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Register {
    applied: Vec<u64>,
}

impl Application for Register {
    type Action = u64;
    type Reply = usize;
    fn apply(&mut self, action: &u64) -> usize {
        self.applied.push(*action);
        self.applied.len()
    }
    fn snapshot(&self) -> Snapshot {
        Snapshot::exact(self.applied.to_bytes())
    }
    fn restore(data: &[u8]) -> Result<Self, WireError> {
        Ok(Register {
            applied: Vec::from_bytes(data)?,
        })
    }
}

const TICK_TOKEN: u64 = u64::MAX;
const TICK_US: u64 = 20_000;

struct Cluster {
    engine: Engine<MwMsg<Batch<u64>>>,
    nodes: Vec<Option<Middleware<Register>>>,
    applied: Vec<Vec<(ProposalId, u64)>>, // not strictly the value; reply len
    recovered: Vec<Vec<u64>>,             // recovery completion times (µs)
    config: TreplicaConfig,
}

impl Cluster {
    fn new(n: usize, seed: u64) -> Self {
        let config = TreplicaConfig {
            checkpoint_interval: 10,
            ..TreplicaConfig::lan(n)
        };
        let mut engine = Engine::new(n, SimConfig::default(), seed);
        let mut nodes = Vec::new();
        for i in 0..n {
            let mw = Middleware::new(
                ReplicaId(i as u32),
                Register {
                    applied: Vec::new(),
                },
                config.clone(),
                0,
            );
            engine.set_timer(NodeId(i), SimDuration::from_micros(TICK_US), TICK_TOKEN);
            nodes.push(Some(mw));
        }
        Cluster {
            engine,
            nodes,
            applied: vec![Vec::new(); n],
            recovered: vec![Vec::new(); n],
            config,
        }
    }

    fn apply_effects(&mut self, node: usize, effects: Vec<MwEffect<Register>>) {
        for e in effects {
            match e {
                MwEffect::Send { to, msg, bytes } => {
                    self.engine
                        .send_sized(NodeId(node), NodeId(to.index()), msg, bytes);
                }
                MwEffect::DiskWrite { op, token, nominal } => {
                    if let (Some(nom), simnet::StableOp::Put { key, .. }) = (nominal, &op) {
                        let key = key.clone();
                        self.engine.set_nominal(NodeId(node), &key, nom);
                    }
                    self.engine.disk_write(NodeId(node), op, token);
                }
                MwEffect::DiskRead { key, token } => {
                    self.engine.disk_read(NodeId(node), &key, token);
                }
                MwEffect::DiskReadRaw { bytes, token } => {
                    self.engine.disk_read_raw(NodeId(node), bytes, token);
                }
                MwEffect::Applied { pid, reply, .. } => {
                    self.applied[node].push((pid, reply as u64));
                }
                MwEffect::RecoveryComplete => {
                    self.recovered[node].push(self.engine.now().as_micros());
                }
                // This harness never reconfigures its replica set.
                MwEffect::Reconfigured { .. } => {}
            }
        }
    }

    fn run_until(&mut self, t: SimTime) {
        while let Some((now, event)) = self.engine.next_event_before(t) {
            match event {
                Event::Message { from, to, payload } => {
                    if let Some(mw) = self.nodes[to.index()].as_mut() {
                        let fx =
                            mw.on_message(ReplicaId(from.index() as u32), payload, now.as_micros());
                        self.apply_effects(to.index(), fx);
                    }
                }
                Event::Timer { node, token } if token == TICK_TOKEN => {
                    self.engine
                        .set_timer(node, SimDuration::from_micros(TICK_US), TICK_TOKEN);
                    if let Some(mw) = self.nodes[node.index()].as_mut() {
                        let fx = mw.on_tick(now.as_micros());
                        self.apply_effects(node.index(), fx);
                    }
                }
                Event::Timer { .. } => {}
                Event::DiskWriteDone { node, token } => {
                    if let Some(mw) = self.nodes[node.index()].as_mut() {
                        let fx = mw.on_disk_write_done(token);
                        self.apply_effects(node.index(), fx);
                    }
                }
                Event::DiskReadDone { node, token, value } => {
                    if let Some(mw) = self.nodes[node.index()].as_mut() {
                        let fx = mw.on_disk_read_done(token, value);
                        self.apply_effects(node.index(), fx);
                    }
                }
                Event::DiskWriteFailed { .. } => unreachable!("no disk faults injected"),
            }
        }
    }

    fn execute(&mut self, node: usize, value: u64) -> ProposalId {
        let now = self.engine.now().as_micros();
        let (pid, fx) = self.nodes[node]
            .as_mut()
            .expect("live node")
            .execute(value, now)
            .expect("active node");
        self.apply_effects(node, fx);
        pid
    }

    fn crash(&mut self, node: usize) {
        self.engine.crash(NodeId(node));
        self.nodes[node] = None;
    }

    fn restart(&mut self, node: usize) {
        self.engine.restart(NodeId(node));
        let disk =
            RecoveredDisk::from_store(self.engine.store(NodeId(node))).expect("readable disk");
        let epoch = self.engine.node_state(NodeId(node)).incarnation.0;
        let (mut mw, fx) = Middleware::recover(
            ReplicaId(node as u32),
            disk,
            self.config.clone(),
            epoch,
            self.engine.now().as_micros(),
        );
        mw.install_initial_state(Register {
            applied: Vec::new(),
        });
        self.apply_effects(node, fx);
        self.engine
            .set_timer(NodeId(node), SimDuration::from_micros(TICK_US), TICK_TOKEN);
        self.nodes[node] = Some(mw);
    }

    fn state(&self, node: usize) -> &Register {
        self.nodes[node]
            .as_ref()
            .expect("live")
            .state()
            .expect("has state")
    }

    fn assert_replicas_agree(&self) {
        let states: Vec<&Register> = (0..self.nodes.len())
            .filter(|&i| self.nodes[i].is_some())
            .map(|i| self.state(i))
            .collect();
        for w in states.windows(2) {
            assert_eq!(w[0], w[1], "replica state divergence");
        }
    }
}

#[test]
fn five_replicas_converge_under_load() {
    let mut c = Cluster::new(5, 11);
    c.run_until(SimTime::from_secs(1)); // stabilize: election + Any
    for i in 0..40 {
        c.execute((i % 5) as usize, 1000 + i);
        c.run_until(SimTime::from_secs(1) + SimDuration::from_millis(50 * (i + 1)));
    }
    c.run_until(SimTime::from_secs(5));
    c.assert_replicas_agree();
    assert_eq!(c.state(0).applied.len(), 40);
    assert_eq!(c.nodes[0].as_ref().unwrap().mode(), Mode::Fast);
}

#[test]
fn checkpoints_are_written_and_log_truncated() {
    let mut c = Cluster::new(5, 12);
    c.run_until(SimTime::from_secs(1));
    for i in 0..35 {
        c.execute(0, i);
        c.run_until(SimTime::from_secs(1) + SimDuration::from_millis(30 * (i + 1)));
    }
    c.run_until(SimTime::from_secs(4));
    let status = c.nodes[0].as_ref().unwrap().status();
    assert!(
        status.checkpoints >= 2,
        "expected ≥2 checkpoints, got {}",
        status.checkpoints
    );
    assert!(status.checkpoint_slot.0 >= 20);
    // Disk state reflects it: meta exists, log truncated.
    let store = c.engine.store(NodeId(0));
    assert!(store.get(treplica::META_KEY).is_some());
    let log = store.log(treplica::LOG_NAME).unwrap();
    assert!(log.first_index() > 0, "log must have been truncated");
}

#[test]
fn crash_and_recover_preserves_state_and_rejoins() {
    let mut c = Cluster::new(5, 13);
    c.run_until(SimTime::from_secs(1));
    for i in 0..30 {
        c.execute((i % 4) as usize, i);
        c.run_until(SimTime::from_secs(1) + SimDuration::from_millis(40 * (i + 1)));
    }
    c.run_until(SimTime::from_secs(3));
    let pre_crash = c.state(4).applied.clone();
    assert_eq!(pre_crash.len(), 30);

    c.crash(4);
    c.run_until(SimTime::from_secs(4));
    // More traffic while node 4 is down (4 alive of 5 = still fast).
    for i in 30..45 {
        c.execute((i % 4) as usize, i);
        c.run_until(SimTime::from_secs(4) + SimDuration::from_millis(40 * (i - 29)));
    }
    c.run_until(SimTime::from_secs(6));

    c.restart(4);
    c.run_until(SimTime::from_secs(20));
    assert_eq!(
        c.recovered[4].len(),
        1,
        "recovery must complete exactly once"
    );
    c.assert_replicas_agree();
    assert_eq!(c.state(4).applied.len(), 45, "backlog replayed");
}

#[test]
fn recovery_time_scales_with_state_size() {
    // Two clusters, identical except for the modeled state size: the one
    // with the bigger nominal checkpoint must take longer to recover
    // (checkpoint load dominates when the backlog is small) — the
    // mechanism behind the paper's Figure 6.
    fn run(nominal_mb: u64, seed: u64) -> u64 {
        #[derive(Debug, Clone, PartialEq, Eq)]
        struct Sized(Vec<u64>, u64);
        impl Application for Sized {
            type Action = u64;
            type Reply = usize;
            fn apply(&mut self, a: &u64) -> usize {
                self.0.push(*a);
                self.0.len()
            }
            fn snapshot(&self) -> Snapshot {
                Snapshot {
                    data: (self.0.clone(), self.1).to_bytes(),
                    nominal_bytes: self.1,
                }
            }
            fn restore(data: &[u8]) -> Result<Self, WireError> {
                let (v, n) = <(Vec<u64>, u64)>::from_bytes(data)?;
                Ok(Sized(v, n))
            }
        }

        let n = 5;
        let config = TreplicaConfig {
            checkpoint_interval: 10,
            ..TreplicaConfig::lan(n)
        };
        let mut engine: Engine<MwMsg<Batch<u64>>> = Engine::new(n, SimConfig::default(), seed);
        let mut nodes: Vec<Option<Middleware<Sized>>> = (0..n)
            .map(|i| {
                engine.set_timer(NodeId(i), SimDuration::from_micros(TICK_US), TICK_TOKEN);
                Some(Middleware::new(
                    ReplicaId(i as u32),
                    Sized(Vec::new(), nominal_mb * 1_000_000),
                    config.clone(),
                    0,
                ))
            })
            .collect();
        let mut recovered_at: Option<u64> = None;

        // Local driver loop (mirrors Cluster, for the custom app type).
        let apply = |engine: &mut Engine<MwMsg<Batch<u64>>>,
                     _nodes: &mut Vec<Option<Middleware<Sized>>>,
                     recovered_at: &mut Option<u64>,
                     node: usize,
                     fx: Vec<MwEffect<Sized>>| {
            for e in fx {
                match e {
                    MwEffect::Send { to, msg, bytes } => {
                        engine.send_sized(NodeId(node), NodeId(to.index()), msg, bytes);
                    }
                    MwEffect::DiskWrite { op, token, nominal } => {
                        if let (Some(nom), simnet::StableOp::Put { key, .. }) = (nominal, &op) {
                            let key = key.clone();
                            engine.set_nominal(NodeId(node), &key, nom);
                        }
                        engine.disk_write(NodeId(node), op, token);
                    }
                    MwEffect::DiskRead { key, token } => {
                        engine.disk_read(NodeId(node), &key, token)
                    }
                    MwEffect::DiskReadRaw { bytes, token } => {
                        engine.disk_read_raw(NodeId(node), bytes, token)
                    }
                    MwEffect::Applied { .. } => {}
                    MwEffect::RecoveryComplete => *recovered_at = Some(engine.now().as_micros()),
                    MwEffect::Reconfigured { .. } => {}
                }
            }
        };
        let pump = |engine: &mut Engine<MwMsg<Batch<u64>>>,
                    nodes: &mut Vec<Option<Middleware<Sized>>>,
                    recovered_at: &mut Option<u64>,
                    until: SimTime| {
            while let Some((now, ev)) = engine.next_event_before(until) {
                match ev {
                    Event::Message { from, to, payload } => {
                        if let Some(mw) = nodes[to.index()].as_mut() {
                            let fx = mw.on_message(
                                ReplicaId(from.index() as u32),
                                payload,
                                now.as_micros(),
                            );
                            apply(engine, nodes, recovered_at, to.index(), fx);
                        }
                    }
                    Event::Timer { node, token } if token == TICK_TOKEN => {
                        engine.set_timer(node, SimDuration::from_micros(TICK_US), TICK_TOKEN);
                        if let Some(mw) = nodes[node.index()].as_mut() {
                            let fx = mw.on_tick(now.as_micros());
                            apply(engine, nodes, recovered_at, node.index(), fx);
                        }
                    }
                    Event::Timer { .. } => {}
                    Event::DiskWriteDone { node, token } => {
                        if let Some(mw) = nodes[node.index()].as_mut() {
                            let fx = mw.on_disk_write_done(token);
                            apply(engine, nodes, recovered_at, node.index(), fx);
                        }
                    }
                    Event::DiskReadDone { node, token, value } => {
                        if let Some(mw) = nodes[node.index()].as_mut() {
                            let fx = mw.on_disk_read_done(token, value);
                            apply(engine, nodes, recovered_at, node.index(), fx);
                        }
                    }
                    Event::DiskWriteFailed { .. } => unreachable!("no disk faults injected"),
                }
            }
        };

        pump(
            &mut engine,
            &mut nodes,
            &mut recovered_at,
            SimTime::from_secs(1),
        );
        for i in 0..25u64 {
            let now = engine.now().as_micros();
            let (pid, fx) = nodes[0].as_mut().unwrap().execute(i, now).unwrap();
            let _ = pid;
            apply(&mut engine, &mut nodes, &mut recovered_at, 0, fx);
            pump(
                &mut engine,
                &mut nodes,
                &mut recovered_at,
                SimTime::from_secs(1) + SimDuration::from_millis(40 * (i + 1)),
            );
        }
        pump(
            &mut engine,
            &mut nodes,
            &mut recovered_at,
            SimTime::from_secs(3),
        );
        // Crash node 4 and restart it.
        engine.crash(NodeId(4));
        nodes[4] = None;
        pump(
            &mut engine,
            &mut nodes,
            &mut recovered_at,
            SimTime::from_secs(4),
        );
        engine.restart(NodeId(4));
        let restart_at = engine.now().as_micros();
        let disk = RecoveredDisk::from_store(engine.store(NodeId(4))).unwrap();
        let epoch = engine.node_state(NodeId(4)).incarnation.0;
        let (mut mw, fx) =
            Middleware::recover(ReplicaId(4), disk, config.clone(), epoch, restart_at);
        mw.install_initial_state(Sized(Vec::new(), nominal_mb * 1_000_000));
        nodes[4] = Some(mw);
        apply(&mut engine, &mut nodes, &mut recovered_at, 4, fx);
        engine.set_timer(NodeId(4), SimDuration::from_micros(TICK_US), TICK_TOKEN);
        pump(
            &mut engine,
            &mut nodes,
            &mut recovered_at,
            SimTime::from_secs(200),
        );
        recovered_at.expect("recovery completes") - restart_at
    }

    let small = run(300, 77);
    let large = run(700, 77);
    // 300 MB at the 8 MB/s restore rate ≈ 37.5 s; 700 MB ≈ 87.5 s.
    assert!(
        large > small + 40_000_000,
        "700MB recovery ({large}µs) should exceed 300MB ({small}µs) by ~50s"
    );
    assert!(
        small > 30_000_000,
        "300MB checkpoint load must cost ≥30s, got {small}µs"
    );
}

#[test]
fn deterministic_given_seed() {
    let run = |seed: u64| {
        let mut c = Cluster::new(5, seed);
        c.run_until(SimTime::from_secs(1));
        for i in 0..10 {
            c.execute((i % 5) as usize, i);
            c.run_until(SimTime::from_secs(1) + SimDuration::from_millis(100 * (i + 1)));
        }
        c.run_until(SimTime::from_secs(4));
        c.state(0).applied.clone()
    };
    assert_eq!(run(5), run(5));
}

#[test]
fn snapshot_transfer_when_backlog_outruns_retention() {
    // Shrink the retention window to force the recovering replica past
    // its peers' retained history: it must fall back to a full state
    // transfer (SnapshotRequest/Reply) and still converge.
    let mut c = Cluster::new(5, 21);
    c.config = TreplicaConfig {
        checkpoint_interval: 5,
        retention_slots: 2,
        ..TreplicaConfig::lan(5)
    };
    // Rebuild nodes with the tight config.
    for i in 0..5 {
        c.nodes[i] = Some(Middleware::new(
            ReplicaId(i as u32),
            Register {
                applied: Vec::new(),
            },
            c.config.clone(),
            0,
        ));
    }
    c.run_until(SimTime::from_secs(1));
    c.crash(4);
    c.run_until(SimTime::from_secs(2));
    // 40 writes while node 4 is down: peers checkpoint every 5 and only
    // retain 2 slots behind the checkpoint.
    for i in 0..40 {
        c.execute((i % 4) as usize, i);
        c.run_until(SimTime::from_secs(2) + SimDuration::from_millis(40 * (i + 1)));
    }
    c.run_until(SimTime::from_secs(5));
    c.restart(4);
    c.run_until(SimTime::from_secs(30));
    assert_eq!(c.recovered[4].len(), 1, "recovery completes via snapshot");
    c.assert_replicas_agree();
    assert_eq!(c.state(4).applied.len(), 40, "state transferred in full");
}

#[test]
fn converges_over_a_lossy_network() {
    // 2% message loss: retries, catch-up and collision recovery must
    // still drive every proposal to delivery everywhere.
    let mut c = Cluster::new(5, 31);
    let lossy = simnet::SimConfig {
        net: simnet::NetConfig {
            drop_probability: 0.02,
            ..simnet::NetConfig::default()
        },
        ..simnet::SimConfig::default()
    };
    c.engine = Engine::new(5, lossy, 31);
    for i in 0..5 {
        c.nodes[i] = Some(Middleware::new(
            ReplicaId(i as u32),
            Register {
                applied: Vec::new(),
            },
            c.config.clone(),
            0,
        ));
        c.engine.set_timer(
            simnet::NodeId(i),
            SimDuration::from_micros(TICK_US),
            TICK_TOKEN,
        );
    }
    c.run_until(SimTime::from_secs(1));
    for i in 0..30 {
        c.execute((i % 5) as usize, i);
        c.run_until(SimTime::from_secs(1) + SimDuration::from_millis(100 * (i + 1)));
    }
    // Ample time for retries over the lossy links.
    c.run_until(SimTime::from_secs(30));
    c.assert_replicas_agree();
    assert_eq!(
        c.state(0).applied.len(),
        30,
        "all proposals delivered despite loss"
    );
}

#[test]
fn partition_heals_and_minority_catches_up() {
    let mut c = Cluster::new(5, 33);
    c.run_until(SimTime::from_secs(1));
    for i in 0..10 {
        c.execute(0, i);
        c.run_until(SimTime::from_secs(1) + SimDuration::from_millis(60 * (i + 1)));
    }
    // Partition nodes {3,4} away from the majority.
    c.engine.network_mut().partition(
        &[simnet::NodeId(0), simnet::NodeId(1), simnet::NodeId(2)],
        &[simnet::NodeId(3), simnet::NodeId(4)],
    );
    c.run_until(SimTime::from_secs(3));
    for i in 10..20 {
        c.execute(0, i);
        c.run_until(SimTime::from_secs(3) + SimDuration::from_millis(60 * (i - 9)));
    }
    c.run_until(SimTime::from_secs(6));
    assert_eq!(
        c.state(0).applied.len(),
        20,
        "majority side keeps committing"
    );
    assert!(c.state(4).applied.len() < 20, "minority is behind");
    // Heal: the minority catches up via the learn protocol.
    c.engine.network_mut().heal_all();
    c.run_until(SimTime::from_secs(20));
    c.assert_replicas_agree();
    assert_eq!(
        c.state(4).applied.len(),
        20,
        "minority caught up after heal"
    );
}

#[test]
fn crash_during_recovery_recovers_again() {
    // A replica that crashes *while recovering* (checkpoint reload in
    // flight) must come back cleanly on the next restart.
    let mut c = Cluster::new(5, 41);
    c.run_until(SimTime::from_secs(1));
    for i in 0..25 {
        c.execute((i % 4) as usize, i);
        c.run_until(SimTime::from_secs(1) + SimDuration::from_millis(40 * (i + 1)));
    }
    c.run_until(SimTime::from_secs(3));
    c.crash(4);
    c.run_until(SimTime::from_secs(4));
    c.restart(4);
    // Let the recovery start (log read done, checkpoint still loading)…
    c.run_until(SimTime::from_secs(4) + SimDuration::from_millis(200));
    // …and kill it again mid-recovery.
    c.crash(4);
    c.run_until(SimTime::from_secs(6));
    for i in 25..35 {
        c.execute((i % 4) as usize, i);
        c.run_until(SimTime::from_secs(6) + SimDuration::from_millis(40 * (i - 24)));
    }
    c.restart(4);
    c.run_until(SimTime::from_secs(40));
    assert_eq!(c.recovered[4].len(), 1, "second recovery completes");
    c.assert_replicas_agree();
    assert_eq!(c.state(4).applied.len(), 35);
}

#[test]
fn crash_during_checkpoint_write_keeps_previous_generation() {
    // Kill a replica while its checkpoint data write is in flight: the
    // metadata still points at the previous generation, so recovery
    // restores from it and replays the suffix.
    let mut c = Cluster::new(5, 43);
    c.run_until(SimTime::from_secs(1));
    // checkpoint_interval = 10 (Cluster::new) → first periodic
    // checkpoint fires at the 10th apply; crash right after issuing it.
    for i in 0..9 {
        c.execute(0, i);
        c.run_until(SimTime::from_secs(1) + SimDuration::from_millis(50 * (i + 1)));
    }
    // The 10th execute triggers the snapshot + Put; crash node 3 before
    // its disk write can complete (writes take ≥ append/seek time).
    c.execute(0, 9);
    c.crash(3);
    c.run_until(SimTime::from_secs(3));
    for i in 10..15 {
        c.execute(0, i);
        c.run_until(SimTime::from_secs(3) + SimDuration::from_millis(50 * (i - 9)));
    }
    c.restart(3);
    c.run_until(SimTime::from_secs(30));
    assert_eq!(c.recovered[3].len(), 1, "recovery completes");
    c.assert_replicas_agree();
    assert_eq!(c.state(3).applied.len(), 15, "no updates lost");
}

#[test]
fn flow_control_bounds_outstanding_proposals() {
    // With max_outstanding = 2, a burst of 12 executes from one node
    // trickles through the ensemble two at a time — and still all
    // apply, in order, everywhere.
    let mut c = Cluster::new(5, 47);
    c.config = TreplicaConfig {
        checkpoint_interval: 100,
        max_outstanding: Some(2),
        ..TreplicaConfig::lan(5)
    };
    for i in 0..5 {
        c.nodes[i] = Some(Middleware::new(
            ReplicaId(i as u32),
            Register {
                applied: Vec::new(),
            },
            c.config.clone(),
            0,
        ));
    }
    c.run_until(SimTime::from_secs(1));
    // Burst without interleaved settling.
    for v in 0..12u64 {
        c.execute(0, v);
    }
    let status = c.nodes[0].as_ref().unwrap().status();
    assert!(
        status.withheld >= 10,
        "most updates withheld by flow control right after the burst (withheld={})",
        status.withheld
    );
    assert!(
        status.paxos.pending_proposals <= 2,
        "at most max_outstanding decrees in flight (pending={})",
        status.paxos.pending_proposals
    );
    c.run_until(SimTime::from_secs(20));
    c.assert_replicas_agree();
    assert_eq!(
        c.state(0).applied.len(),
        12,
        "all throttled proposals eventually apply"
    );
    assert_eq!(
        c.nodes[0]
            .as_ref()
            .unwrap()
            .status()
            .paxos
            .pending_proposals,
        0
    );
    // Each value applied exactly once (the total order may permute
    // concurrently released proposals — that is Fast Paxos semantics).
    let mut seen = c.state(0).applied.clone();
    seen.sort_unstable();
    assert_eq!(seen, (0..12).collect::<Vec<_>>());
}
