//! The RobustStore retrofit, up close.
//!
//! Drives the TPC-W bookstore object model through the facade exactly
//! as the web tier does: reads answered from local state, updates
//! turned into deterministic actions with pre-sampled non-determinism
//! (the paper's §4 tasks I and II), and shows that two replicas
//! applying the same action stream converge bit-for-bit.
//!
//! Run with: `cargo run --example bookstore`

use robuststore_repro::robuststore::{Action, Prepared, Reply, RobustStore, TpcwDatabase};
use robuststore_repro::tpcw::{
    Interaction, ItemId, PopulationParams, Profile, Rbe, RbeConfig, SessionUpdate,
};
use robuststore_repro::treplica::Application;

fn main() {
    let params = PopulationParams {
        items: 1_000,
        ebs: 1,
        seed: 99,
    };
    // Two "replicas" of the application state.
    let mut replica_a = RobustStore::new(params);
    let mut replica_b = RobustStore::new(params);
    println!(
        "populated bookstore: {} items, {} customers, modeled size {:.1} MB",
        params.items,
        params.customers(),
        replica_a.nominal_bytes() as f64 / 1e6
    );

    // A browser session generating the shopping mix, and the server-side
    // facade that classifies and de-randomizes its requests.
    let mut rbe = Rbe::new(
        1,
        RbeConfig {
            profile: Profile::Shopping,
            think_mean_us: 1,
            items: params.items,
            customers: params.customers(),
        },
        2024,
    );
    let mut facade = TpcwDatabase::new(7);

    let mut clock_us: u64 = 1_000_000;
    let mut reads = 0u32;
    let mut writes = 0u32;
    let mut orders = 0u32;
    let mut log: Vec<Action> = Vec::new();

    for _ in 0..2_000 {
        clock_us += 137_000; // the server's local clock marches on
        let request = rbe.next_request();
        match facade.prepare(&request, clock_us) {
            Prepared::Read(op) => {
                reads += 1;
                let page = TpcwDatabase::perform_read(replica_a.store(), &op);
                assert!(page.ok, "read {op:?} failed");
            }
            Prepared::Write(action) => {
                writes += 1;
                // In RobustStore this action would go through the
                // persistent queue; here we apply it to both replicas
                // directly to demonstrate determinism.
                let ra = replica_a.apply(&action);
                let rb = replica_b.apply(&action);
                assert_eq!(ra, rb, "replicas disagreed on {action:?}");
                if let Reply::Order(id) = &ra {
                    orders += 1;
                    let (order, lines, _cc) = replica_a.store().order(*id).expect("order");
                    if orders <= 3 {
                        println!(
                            "order {:>6}: {} lines, total ${:.2}, stamped t={}µs",
                            id.0,
                            lines.len(),
                            order.total_cents as f64 / 100.0,
                            order.date
                        );
                    }
                }
                let update = match &ra {
                    Reply::Cart(id) => SessionUpdate {
                        cart: Some(*id),
                        customer: None,
                    },
                    Reply::Customer(id) => SessionUpdate {
                        cart: None,
                        customer: Some(*id),
                    },
                    _ => SessionUpdate::default(),
                };
                rbe.on_response(request.interaction, update);
                log.push(action);
                continue;
            }
        }
        rbe.on_response(request.interaction, SessionUpdate::default());
    }

    assert_eq!(replica_a, replica_b, "replicas must be identical");
    println!(
        "\n2000 interactions: {reads} reads served locally, {writes} updates replicated, {orders} orders placed"
    );
    println!(
        "state grew to {:.1} MB (modeled)",
        replica_a.nominal_bytes() as f64 / 1e6
    );

    // Checkpoint/restore roundtrip: a third replica reconstructs purely
    // from the snapshot, exactly like a recovery would.
    let snapshot = replica_a.snapshot();
    let replica_c = RobustStore::restore(&snapshot.data).expect("restore");
    assert_eq!(replica_a, replica_c);
    println!(
        "snapshot: {} bytes encode a {:.1} MB modeled state; restore converged",
        snapshot.data.len(),
        snapshot.nominal_bytes as f64 / 1e6
    );

    // Show the non-determinism removal on one concrete action.
    if let Some(Action::BuyConfirm { payment, now, .. }) =
        log.iter().find(|a| matches!(a, Action::BuyConfirm { .. }))
    {
        println!(
            "\nnon-determinism removal (paper §4): the order timestamp ({now}) and the \
             payment authorization ({}) were sampled before the action was built",
            payment.auth_id
        );
    }
    let _ = Interaction::BuyConfirm;
    let _ = ItemId(0);
    println!("bookstore example OK.");
}
