//! A complete dependability experiment, end to end.
//!
//! Reproduces the shape of the paper's §5.5 experiment on a scaled-down
//! schedule: a five-replica RobustStore under the shopping workload is
//! hit with two overlapped crashes; the watchdog restarts both replicas
//! and Treplica recovers them (checkpoint reload ∥ backlog re-learning)
//! while the system keeps serving. Prints the WIPS histogram and the
//! dependability measures.
//!
//! Run with: `cargo run --release --example crash_failover`

use robuststore_repro::cluster::{run_experiment, ExperimentConfig};
use robuststore_repro::faultload::Faultload;
use robuststore_repro::tpcw::{Profile, Schedule};

fn main() {
    let mut config = ExperimentConfig::paper(5);
    config.profile = Profile::Shopping;
    config.ebs = 30; // ≈300 MB state keeps the demo fast
    config.rbes = 600;
    config.schedule = Schedule::quick(150);
    config.faultload = Faultload::double_crash().scaled(1, 3); // crashes at 80 s and 90 s

    println!(
        "running: 5 replicas, shopping workload, {} RBEs, crashes at t=80s and t=90s…",
        config.rbes
    );
    let report = run_experiment(&config);

    // WIPS histogram with crash (c) / recovery-complete (r) markers.
    let mut markers: Vec<(u64, char)> = Vec::new();
    for span in &report.spans {
        markers.push((span.crash_at, 'c'));
        if let Some(r) = span.recovered_at {
            markers.push((r, 'r'));
        }
    }
    let series = report.recorder.wips_series();
    let width = 80;
    let bucket = series.len().div_ceil(width);
    let max = series.iter().copied().max().unwrap_or(1) as f64;
    let plot: String = series
        .chunks(bucket)
        .map(|c| {
            let avg = c.iter().map(|v| *v as f64).sum::<f64>() / c.len() as f64;
            match (avg / max * 8.0) as u32 {
                0 => ' ',
                1 => '.',
                2 => ':',
                3 => '-',
                4 => '=',
                5 => '+',
                6 => '*',
                7 => '#',
                _ => '@',
            }
        })
        .collect();
    let mut marks = vec![b' '; plot.chars().count()];
    for (t, ch) in &markers {
        let col = (*t / 1_000_000) as usize / bucket;
        if col < marks.len() {
            marks[col] = *ch as u8;
        }
    }
    println!(
        "\nWIPS over time ({}s per column, peak {:.0}):",
        bucket, max
    );
    println!("{plot}");
    println!("{}", String::from_utf8_lossy(&marks));

    let d = &report.dependability;
    println!(
        "failure-free AWIPS = {:.1} (CV {:.3})",
        d.failure_free.awips, d.failure_free.cv
    );
    for (i, w) in d.recovery.iter().enumerate() {
        println!(
            "recovery window {}: AWIPS = {:.1}  (PV {:+.1}%)",
            i + 1,
            w.awips,
            d.pv_percent[i]
        );
    }
    for span in &report.spans {
        println!(
            "replica {} crashed at {:.0}s, restarted at {:.0}s, operational after {:.1}s of recovery",
            span.server,
            span.crash_at as f64 / 1e6,
            span.restart_at as f64 / 1e6,
            span.recovery_secs().unwrap_or(f64::NAN),
        );
    }
    println!(
        "accuracy = {:.3}%   availability = {:.5}   autonomy = {:.2}",
        d.accuracy_percent, d.availability, d.autonomy
    );
    assert!(d.autonomy == 1.0, "watchdog handled both recoveries");
    println!("\ncrash_failover example OK: uninterrupted service through two overlapped crashes.");
}
