//! RobustStore on real threads.
//!
//! The experiments drive the middleware on a discrete-event simulator;
//! this example shows the embedding a deployment would use: a
//! three-replica bookstore on `treplica::runtime::LocalCluster`, with
//! blocking `execute()` calls from concurrent client threads, a crash,
//! and an autonomous recovery — all in wall-clock time.
//!
//! Run with: `cargo run --release --example threaded_store`

// The example demonstrates the wall-clock embedding, so real time
// is intentional here.
#![allow(clippy::disallowed_methods)]

use std::time::{Duration, Instant};

use robuststore_repro::robuststore::{Action, Reply, RobustStore};
use robuststore_repro::tpcw::{CustomerId, ItemId, Payment, PopulationParams};
use robuststore_repro::treplica::runtime::LocalCluster;
use robuststore_repro::treplica::TreplicaConfig;

fn main() {
    let params = PopulationParams {
        items: 500,
        ebs: 1,
        seed: 11,
    };
    let mut config = TreplicaConfig::lan(3);
    config.paxos.heartbeat_interval_us = 10_000;
    config.paxos.fd_timeout_us = 60_000;
    config.paxos.prepare_grace_us = 20_000;
    config.paxos.collision_timeout_us = 20_000;
    config.paxos.propose_retry_us = 300_000;
    config.checkpoint_interval = 50;

    println!("spawning a 3-replica bookstore on threads…");
    let cluster = LocalCluster::spawn(3, config, Duration::from_millis(5), move || {
        RobustStore::new(params)
    });

    // Wait for the ensemble to elect and open fast rounds.
    let start = Instant::now();
    while start.elapsed() < Duration::from_secs(10) {
        if cluster
            .handle(0)
            .execute(Action::RefreshSession {
                customer: CustomerId(0),
                now: 0,
            })
            .is_ok()
        {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    // Three concurrent "web servers", each pushing purchases through a
    // different replica with the blocking execute() of the paper.
    let t0 = Instant::now();
    let mut joins = Vec::new();
    for worker in 0..3usize {
        let handle = cluster.handle(worker);
        joins.push(std::thread::spawn(move || {
            let mut orders = 0u32;
            for k in 0..40u64 {
                let now = (worker as u64) << 32 | k;
                let cart = match handle.execute(Action::DoCart {
                    cart: None,
                    add: Some((ItemId(((worker as u64 * 40 + k) % 500) as u32), 1)),
                    updates: vec![],
                    default_item: ItemId(0),
                    now,
                }) {
                    Ok(Reply::Cart(id)) => id,
                    other => panic!("cart failed: {other:?}"),
                };
                match handle.execute(Action::BuyConfirm {
                    cart,
                    customer: CustomerId((worker * 97) as u32),
                    payment: Payment {
                        cc_type: "VISA".into(),
                        cc_num: "4111111111111111".into(),
                        cc_name: format!("worker{worker}"),
                        cc_expiry: 15_000,
                        auth_id: format!("AUTH{worker}-{k}"),
                        country: 1,
                    },
                    ship_type: 1,
                    now,
                }) {
                    Ok(Reply::Order(_)) => orders += 1,
                    other => panic!("buy failed: {other:?}"),
                }
            }
            orders
        }));
    }
    let total: u32 = joins.into_iter().map(|j| j.join().expect("worker")).sum();
    println!(
        "3 threads placed {total} orders in {:.2}s (blocking execute on a live ensemble)",
        t0.elapsed().as_secs_f64()
    );

    // All replicas hold identical state.
    let counts: Vec<Option<usize>> = (0..3)
        .map(|i| {
            cluster
                .handle(i)
                .query(|s| s.store().overlay().new_orders.len())
        })
        .collect();
    println!("orders per replica view: {counts:?}");
    assert!(counts.iter().all(|c| *c == Some(total as usize)));

    // Crash replica 2, keep selling, recover it, and watch it catch up.
    println!("crashing replica 2…");
    let h2 = cluster.handle(2);
    h2.crash();
    let h0 = cluster.handle(0);
    for k in 0..10u64 {
        let cart = match h0.execute(Action::DoCart {
            cart: None,
            add: Some((ItemId((k % 500) as u32), 2)),
            updates: vec![],
            default_item: ItemId(0),
            now: 1 << 40 | k,
        }) {
            Ok(Reply::Cart(id)) => id,
            other => panic!("cart failed: {other:?}"),
        };
        h0.execute(Action::BuyConfirm {
            cart,
            customer: CustomerId(7),
            payment: Payment {
                cc_type: "AMEX".into(),
                cc_num: "4".into(),
                cc_name: "survivor".into(),
                cc_expiry: 15_000,
                auth_id: format!("S{k}"),
                country: 2,
            },
            ship_type: 0,
            now: 1 << 40 | k,
        })
        .expect("majority keeps selling");
    }
    println!("sold 10 more orders on the surviving majority; recovering replica 2…");
    h2.recover();
    let deadline = Instant::now() + Duration::from_secs(20);
    while Instant::now() < deadline && !h2.is_recovered() {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(h2.is_recovered(), "recovery must complete");
    // Give the post-recovery deliveries a beat, then compare.
    let expect = h0.query(|s| s.store().overlay().new_orders.len()).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut got = 0;
    while Instant::now() < deadline {
        got = h2
            .query(|s| s.store().overlay().new_orders.len())
            .unwrap_or(0);
        if got == expect {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    println!("replica 2 after recovery: {got} orders (reference {expect})");
    assert_eq!(got, expect);
    cluster.shutdown();
    println!("threaded_store example OK: blocking API, concurrency, crash, recovery.");
}
