//! Fast Paxos vs classic Paxos, and the paper's mode-switching rule.
//!
//! Drives a bare consensus ensemble (no application on top) through the
//! three operating regimes of Treplica (§2): Fast Paxos while ⌈3N/4⌉
//! replicas are up, classic Paxos down to a majority, blocked below it
//! — and prints what each crash does to the mode and to commit progress.
//!
//! Run with: `cargo run --example paxos_modes`

use std::collections::VecDeque;

use robuststore_repro::paxos::{
    Effect, Mode, Msg, PaxosConfig, ProposalId, Record, Replica, ReplicaId, Slot,
};

type Value = u64;

struct Harness {
    replicas: Vec<Option<Replica<Value>>>,
    logs: Vec<Vec<Record<Value>>>,
    delivered: Vec<Vec<(Slot, ProposalId, Value)>>,
    inboxes: Vec<VecDeque<(ReplicaId, Msg<Value>)>>,
    config: PaxosConfig,
    epochs: Vec<u64>,
    now: u64,
}

impl Harness {
    fn new(n: usize) -> Harness {
        let config = PaxosConfig::lan(n);
        Harness {
            replicas: (0..n)
                .map(|i| Some(Replica::new(ReplicaId(i as u32), config.clone(), 0)))
                .collect(),
            logs: vec![Vec::new(); n],
            delivered: vec![Vec::new(); n],
            inboxes: (0..n).map(|_| VecDeque::new()).collect(),
            config,
            epochs: vec![0; n],
            now: 0,
        }
    }

    fn apply(&mut self, node: usize, fx: Vec<Effect<Value>>) {
        let mut q = VecDeque::from(fx);
        while let Some(e) = q.pop_front() {
            match e {
                Effect::Send { to, msg } => {
                    if self.replicas[to.index()].is_some() {
                        self.inboxes[to.index()].push_back((ReplicaId(node as u32), msg));
                    }
                }
                Effect::Persist { record, token } => {
                    self.logs[node].push(record);
                    if let Some(r) = self.replicas[node].as_mut() {
                        q.extend(r.on_persisted(token));
                    }
                }
                Effect::Deliver {
                    slot, pid, value, ..
                } => self.delivered[node].push((slot, pid, value)),
                // This walkthrough never proposes reconfigurations.
                Effect::Reconfigured { .. } => {}
            }
        }
    }

    fn step(&mut self) {
        self.now += 20_000;
        for i in 0..self.replicas.len() {
            if let Some(r) = self.replicas[i].as_mut() {
                let fx = r.on_tick(self.now);
                self.apply(i, fx);
            }
        }
        loop {
            let mut moved = false;
            for i in 0..self.replicas.len() {
                while let Some((from, msg)) = self.inboxes[i].pop_front() {
                    moved = true;
                    if let Some(r) = self.replicas[i].as_mut() {
                        let fx = r.on_message(from, msg, self.now);
                        self.apply(i, fx);
                    }
                }
            }
            if !moved {
                break;
            }
        }
    }

    fn run(&mut self, steps: usize) {
        for _ in 0..steps {
            self.step();
        }
    }

    fn propose(&mut self, node: usize, value: Value) {
        if let Some(r) = self.replicas[node].as_mut() {
            let (_pid, fx) = r.propose(value);
            self.apply(node, fx);
        }
    }

    fn mode(&self) -> Mode {
        self.replicas
            .iter()
            .flatten()
            .next()
            .map(|r| r.status().mode)
            .unwrap_or(Mode::Blocked)
    }

    fn decided(&self) -> usize {
        self.replicas
            .iter()
            .enumerate()
            .filter(|(_, r)| r.is_some())
            .map(|(i, _)| self.delivered[i].len())
            .max()
            .unwrap_or(0)
    }

    fn crash(&mut self, node: usize) {
        self.replicas[node] = None;
        self.inboxes[node].clear();
    }

    fn recover(&mut self, node: usize) {
        self.epochs[node] += 1;
        self.replicas[node] = Some(Replica::recover(
            ReplicaId(node as u32),
            self.config.clone(),
            self.logs[node].iter(),
            Slot::ZERO,
            self.epochs[node],
            self.now,
        ));
        self.delivered[node].clear();
    }
}

fn main() {
    // N = 8: fast quorum ⌈24/4⌉ = 6, majority 5.
    let n = 8;
    let mut h = Harness::new(n);
    h.run(30);
    println!("N = {n}: fast quorum 6, classic quorum 5");
    println!("all {n} up                → mode {:?}", h.mode());
    assert_eq!(h.mode(), Mode::Fast);

    for v in 0..10 {
        h.propose((v % n as u64) as usize, v);
    }
    h.run(30);
    println!(
        "10 proposals             → {} decided (fast path)",
        h.decided()
    );

    // Crash down to 6 replicas: still ≥ fast quorum → Fast.
    h.crash(6);
    h.crash(7);
    h.run(30);
    println!("crash 2 (6 up)           → mode {:?}", h.mode());
    assert_eq!(h.mode(), Mode::Fast);

    // Crash one more (5 up < 6): falls back to classic Paxos.
    h.crash(5);
    h.run(30);
    println!("crash 1 more (5 up)      → mode {:?}", h.mode());
    assert_eq!(h.mode(), Mode::Classic);
    for v in 10..15 {
        h.propose((v % 5) as usize, v);
    }
    h.run(40);
    println!("5 proposals under classic → {} decided total", h.decided());
    assert_eq!(h.decided(), 15);

    // Below a majority: blocked (safety holds, liveness waits).
    h.crash(4);
    h.run(30);
    println!("crash 1 more (4 up)      → mode {:?}", h.mode());
    assert_eq!(h.mode(), Mode::Blocked);
    h.propose(0, 99);
    h.run(40);
    println!(
        "proposal while blocked   → {} decided (parked)",
        h.decided()
    );
    assert_eq!(h.decided(), 15, "no progress below majority");

    // Recoveries lift the ensemble back through the modes.
    h.recover(4);
    h.run(60);
    println!(
        "recover 1 (5 up)         → mode {:?}, parked proposal decided: {}",
        h.mode(),
        h.decided() == 16
    );
    h.recover(5);
    h.recover(6);
    h.run(60);
    println!("recover 2 more (7 up)    → mode {:?}", h.mode());
    assert_eq!(h.mode(), Mode::Fast);
    println!("paxos_modes example OK: Fast ⇄ Classic ⇄ Blocked exactly per the paper's rule.");
}
