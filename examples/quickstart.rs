//! Quickstart: a replicated counter on Treplica.
//!
//! Builds a 3-replica ensemble of the middleware on the simulated
//! testbed, executes a few deterministic actions, crashes a replica and
//! watches it recover autonomously — the whole Treplica programming
//! model (deterministic `apply`, `snapshot`, `restore`, transparent
//! recovery) in ~150 lines.
//!
//! Run with: `cargo run --example quickstart`

use robuststore_repro::paxos::{Batch, ProposalId, ReplicaId};
use robuststore_repro::simnet::{Engine, Event, NodeId, SimConfig, SimDuration, SimTime};
use robuststore_repro::treplica::{
    Application, Middleware, MwEffect, MwMsg, RecoveredDisk, Snapshot, TreplicaConfig, Wire,
    WireError,
};

/// The replicated application: a counter with an operation log length.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Counter {
    total: u64,
    ops: u64,
}

impl Application for Counter {
    type Action = u64;
    type Reply = u64;

    fn apply(&mut self, action: &u64) -> u64 {
        self.total += *action;
        self.ops += 1;
        self.total
    }

    fn snapshot(&self) -> Snapshot {
        Snapshot::exact((self.total, self.ops).to_bytes())
    }

    fn restore(data: &[u8]) -> Result<Self, WireError> {
        let (total, ops) = <(u64, u64)>::from_bytes(data)?;
        Ok(Counter { total, ops })
    }
}

const TICK: u64 = 20_000;
const TICK_TOKEN: u64 = u64::MAX;

fn apply_effects(
    engine: &mut Engine<MwMsg<Batch<u64>>>,
    node: usize,
    effects: Vec<MwEffect<Counter>>,
    applied: &mut Vec<(usize, ProposalId, u64)>,
) {
    for e in effects {
        match e {
            MwEffect::Send { to, msg, bytes } => {
                engine.send_sized(NodeId(node), NodeId(to.index()), msg, bytes);
            }
            MwEffect::DiskWrite { op, token, .. } => engine.disk_write(NodeId(node), op, token),
            MwEffect::DiskRead { key, token } => engine.disk_read(NodeId(node), &key, token),
            MwEffect::DiskReadRaw { bytes, token } => {
                engine.disk_read_raw(NodeId(node), bytes, token)
            }
            MwEffect::Applied { pid, reply, .. } => applied.push((node, pid, reply)),
            MwEffect::RecoveryComplete => {
                println!("[{}] node {node} recovered", engine.now());
            }
            // This walkthrough never changes the membership.
            MwEffect::Reconfigured { .. } => {}
        }
    }
}

fn main() {
    let n = 3;
    let config = TreplicaConfig {
        checkpoint_interval: 5,
        ..TreplicaConfig::lan(n)
    };
    let mut engine: Engine<MwMsg<Batch<u64>>> = Engine::new(n, SimConfig::default(), 7);
    let mut nodes: Vec<Option<Middleware<Counter>>> = (0..n)
        .map(|i| {
            engine.set_timer(NodeId(i), SimDuration::from_micros(TICK), TICK_TOKEN);
            Some(Middleware::new(
                ReplicaId(i as u32),
                Counter { total: 0, ops: 0 },
                config.clone(),
                0,
            ))
        })
        .collect();
    let mut applied = Vec::new();

    let pump = |engine: &mut Engine<MwMsg<Batch<u64>>>,
                nodes: &mut Vec<Option<Middleware<Counter>>>,
                applied: &mut Vec<(usize, ProposalId, u64)>,
                until: SimTime| {
        while let Some((now, ev)) = engine.next_event_before(until) {
            match ev {
                Event::Message { from, to, payload } => {
                    if let Some(mw) = nodes[to.index()].as_mut() {
                        let fx =
                            mw.on_message(ReplicaId(from.index() as u32), payload, now.as_micros());
                        apply_effects(engine, to.index(), fx, applied);
                    }
                }
                Event::Timer { node, token } if token == TICK_TOKEN => {
                    engine.set_timer(node, SimDuration::from_micros(TICK), TICK_TOKEN);
                    if let Some(mw) = nodes[node.index()].as_mut() {
                        let fx = mw.on_tick(now.as_micros());
                        apply_effects(engine, node.index(), fx, applied);
                    }
                }
                Event::Timer { .. } => {}
                Event::DiskWriteDone { node, token } => {
                    if let Some(mw) = nodes[node.index()].as_mut() {
                        let fx = mw.on_disk_write_done(token);
                        apply_effects(engine, node.index(), fx, applied);
                    }
                }
                Event::DiskReadDone { node, token, value } => {
                    if let Some(mw) = nodes[node.index()].as_mut() {
                        let fx = mw.on_disk_read_done(token, value);
                        apply_effects(engine, node.index(), fx, applied);
                    }
                }
                Event::DiskWriteFailed { .. } => unreachable!("no disk faults injected"),
            }
        }
    };

    // Let the ensemble elect a coordinator and open fast rounds.
    pump(&mut engine, &mut nodes, &mut applied, SimTime::from_secs(1));

    // Execute increments from different replicas.
    for (i, inc) in [(0usize, 10u64), (1, 20), (2, 30), (0, 40)] {
        let (_pid, fx) = nodes[i]
            .as_mut()
            .unwrap()
            .execute(inc, engine.now().as_micros())
            .expect("active");
        apply_effects(&mut engine, i, fx, &mut applied);
        let until = engine.now() + SimDuration::from_millis(200);
        pump(&mut engine, &mut nodes, &mut applied, until);
    }
    println!(
        "after 4 increments: node0 total = {}",
        nodes[0].as_ref().unwrap().state().unwrap().total
    );

    // Crash replica 2 and keep working (majority survives).
    println!("[{}] crashing node 2", engine.now());
    engine.crash(NodeId(2));
    nodes[2] = None;
    let (_pid, fx) = nodes[0]
        .as_mut()
        .unwrap()
        .execute(100, engine.now().as_micros())
        .expect("active");
    apply_effects(&mut engine, 0, fx, &mut applied);
    pump(&mut engine, &mut nodes, &mut applied, SimTime::from_secs(3));

    // Restart it: Treplica reloads the checkpoint and re-learns the
    // missed suffix; nothing else is required of the application.
    println!("[{}] restarting node 2", engine.now());
    engine.restart(NodeId(2));
    let disk = RecoveredDisk::from_store(engine.store(NodeId(2))).expect("disk");
    let epoch = engine.node_state(NodeId(2)).incarnation.0;
    let (mut mw, fx) =
        Middleware::recover(ReplicaId(2), disk, config, epoch, engine.now().as_micros());
    mw.install_initial_state(Counter { total: 0, ops: 0 });
    nodes[2] = Some(mw);
    apply_effects(&mut engine, 2, fx, &mut applied);
    engine.set_timer(NodeId(2), SimDuration::from_micros(TICK), TICK_TOKEN);
    pump(
        &mut engine,
        &mut nodes,
        &mut applied,
        SimTime::from_secs(10),
    );

    let recovered = nodes[2].as_ref().unwrap().state().unwrap();
    println!(
        "node 2 after recovery: total = {}, ops = {}",
        recovered.total, recovered.ops
    );
    assert_eq!(recovered.total, 200, "all five increments visible");
    assert_eq!(recovered.ops, 5);
    println!("quickstart OK: replicated, crashed, recovered, converged.");
}
