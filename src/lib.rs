//! Umbrella crate for the RobustStore reproduction workspace.
//!
//! Re-exports the public crates so the examples and integration tests can
//! use a single dependency. See the README for an overview.

pub use cluster;
pub use faultload;
pub use paxos;
pub use robuststore;
pub use simnet;
pub use tpcw;
pub use treplica;
